// The tracked hot-path benchmark set. These definitions are the single
// source of truth: the repo-root bench_test.go wraps them so `go test
// -bench` measures exactly what `nvmbench -bench-json` / `-bench-gate`
// measures.
package benchkit

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/addrsim"
	"repro/internal/dramcache"
	"repro/internal/dwarfs"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/memdev"
	"repro/internal/memsys"
	"repro/internal/ndjson"
	"repro/internal/platform"
	"repro/internal/resultstore"
	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/units"
)

// Tracked returns the benchmark set the committed baseline pins. Names
// match the `go test -bench` names (with the -P suffix stripped).
func Tracked() []Bench {
	return []Bench{
		// Scheduling-independent point count (216 misses) but the shard
		// maps have growth points; leave a little slack.
		{Name: "BenchmarkScenarioSequential", AllocSlack: 8, F: ScenarioSequential},
		// Racing workers can duplicate singleflight entries, and wall time
		// under GOMAXPROCS fan-out swings with scheduler/neighbour noise
		// the single-threaded calibration spin cannot see.
		{Name: "BenchmarkScenarioParallel", AllocSlack: 32, TimeSlack: 0.25, F: ScenarioParallel},
		// WPQ pending-set map churn has rare growth points.
		{Name: "BenchmarkAddrsimCrossval", AllocSlack: 8, F: AddrsimCrossval},
		// The nanosecond-scale benches are memory-latency-bound, which the
		// ALU calibration spin normalizes poorly across microarchitectures;
		// their alloc budgets stay strict but time gets extra slack.
		{Name: "BenchmarkAddressCache", AllocSlack: 0, TimeSlack: 0.50, F: AddressCache},
		{Name: "BenchmarkTraceBuild", AllocSlack: 0, F: TraceBuild},
		{Name: "BenchmarkEngineCacheHit", AllocSlack: 0, TimeSlack: 0.50, F: EngineCacheHit},
		// The store benches hit the filesystem, whose cost the ALU
		// calibration spin cannot normalize across hosts; their alloc
		// budgets carry the real gate.
		{Name: "BenchmarkStoreOpen", AllocSlack: 32, TimeSlack: 0.50, F: StoreOpen},
		{Name: "BenchmarkStoreAppend", AllocSlack: 64, TimeSlack: 0.50, F: StoreAppend},
		{Name: "BenchmarkPointsStreamed", AllocSlack: 0, TimeSlack: 0.25, F: PointsStreamed},
		// A full closed-loop traffic replay: hundreds of concurrent
		// sessions whose goroutine scheduling moves both wall time and
		// allocation count, and whose gated extra (the critical-class p99
		// admission-to-first-point latency) is a tail statistic of a
		// queueing system — core-count differences shift it in ways the
		// single-threaded calibration spin cannot normalize. Both gates
		// carry generous slack: the metric is pinned to catch
		// order-of-magnitude serving regressions (stream stalls, lost
		// wakeups, poll-loop delays), not percent-level drift.
		{Name: "BenchmarkTrafficBursty", AllocSlack: 1 << 14, TimeSlack: 1.50, F: TrafficBursty},
		// A full fleet dispatch round per op: HTTP long-polls, JSON chunk
		// and result bodies, and four worker goroutines' scheduling all
		// allocate, so the budget is a documented envelope (the true
		// zero-alloc contract lives on the chunk-queue hot path, pinned by
		// internal/fleet's 0-alloc test), and wall time over loopback HTTP
		// swings with the network stack — generous slack, gate catches
		// order-of-magnitude dispatch regressions.
		{Name: "BenchmarkFleetScheduler", AllocSlack: 1 << 14, TimeSlack: 1.50, F: FleetScheduler},
		// The 100k-scale dispatch shape at benchmark-friendly size: a
		// 4096-point cold sweep through the windowed scheduler and the
		// batched, compressed result path. Same envelope rationale as
		// FleetScheduler, scaled by the 64x larger op; the gated extra
		// per_point_ns pins dispatch cost per point, points_per_sec is
		// the informational headline.
		{Name: "BenchmarkFleetDispatchWindowed", AllocSlack: 1 << 17, TimeSlack: 1.50, F: FleetDispatchWindowed},
		// Pure wire-format cost: serializing a coalesced 256-point result
		// batch the way workers post it. CPU-bound (JSON + gzip), so the
		// calibration spin normalizes it well; the bytes_per_point_*
		// extras are informational (lower is better — the gate must not
		// read a smaller payload as a regression).
		{Name: "BenchmarkFleetWirePoint", AllocSlack: 32, TimeSlack: 0.25, F: FleetWirePoint},
	}
}

// ScenarioSequential sweeps the 216-point full-cartesian stress preset
// on one engine worker, fresh engine per iteration.
func ScenarioSequential(b *testing.B) { scenarioBench(b, 1) }

// ScenarioParallel sweeps it across GOMAXPROCS workers.
func ScenarioParallel(b *testing.B) { scenarioBench(b, runtime.GOMAXPROCS(0)) }

func scenarioBench(b *testing.B, workers int) {
	sp, err := scenario.ByName("full-cartesian")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext()
		ctx.Engine.SetWorkers(workers)
		if _, err := ctx.RunScenario(sp); err != nil {
			b.Fatal(err)
		}
	}
}

// AddrsimCrossval is one cross-validation workload unit: a stencil
// read/write stream driven through the operational DRAM cache plus a
// transpose store stream driven through the WPQ, 40k requests each,
// using the O(1)-memory streaming drivers.
func AddrsimCrossval(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := addrsim.NewGenerator(memdev.Stencil, 8*units.MiB, 0.2, 8, 101)
		_ = addrsim.RunCacheStream(4*units.MiB, g, 40000)
		q := memdev.NewWPQ(64, units.GBps(13))
		gw := addrsim.NewGenerator(memdev.Transpose, 64*units.MiB, 1.0, 8, 102)
		_ = addrsim.RunWPQStream(q, gw, 40000, units.GBps(25))
	}
}

// AddressCache measures the packed-tag direct-mapped cache: one access
// per op over a pre-generated stencil stream.
func AddressCache(b *testing.B) {
	c := dramcache.NewCache(4 * units.MiB)
	g := addrsim.NewGenerator(memdev.Stencil, 8*units.MiB, 0.2, 8, 1)
	reqs := g.Generate(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := reqs[i&(1<<16-1)]
		c.Access(r.Line, r.Write)
	}
}

// TraceBuild reconstructs a 2000-sample noisy bandwidth trace over a
// 150-segment timeline (the Figure 4/7/8 shape).
func TraceBuild(b *testing.B) {
	per := []trace.Segment{
		{Name: "solve", Duration: 2, DRAMRead: units.GBps(40), DRAMWrite: units.GBps(12), NVMRead: units.GBps(8), NVMWrite: units.GBps(2)},
		{Name: "exchange", Duration: 1, DRAMRead: units.GBps(10), DRAMWrite: units.GBps(30), NVMRead: units.GBps(1), NVMWrite: units.GBps(6)},
		{Name: "reduce", Duration: 0.5, DRAMRead: units.GBps(5), DRAMWrite: units.GBps(5), NVMRead: units.GBps(3), NVMWrite: units.GBps(1)},
	}
	timeline := trace.Repeat(per, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = trace.Build(timeline, 2000, 0.05, 42)
	}
}

// storeOpenFixtureSize is the compacted store the open bench reopens;
// large enough that an eager (v1) open would dominate, small enough to
// build once in well under a second.
const storeOpenFixtureSize = 4096

var (
	storeOpenOnce sync.Once
	storeOpenDir  string
	storeOpenErr  error
)

// storeOpenFixture builds the compacted v2 store once per process.
func storeOpenFixture() (string, error) {
	storeOpenOnce.Do(func() {
		storeOpenDir, storeOpenErr = os.MkdirTemp("", "benchkit-store")
		if storeOpenErr != nil {
			return
		}
		var d *resultstore.Disk
		d, storeOpenErr = resultstore.Open(storeOpenDir)
		if storeOpenErr != nil {
			return
		}
		for i := 0; i < storeOpenFixtureSize; i++ {
			k, res := resultstore.SyntheticRecord(i)
			d.Commit(k, res, nil)
		}
		if storeOpenErr = d.Compact(); storeOpenErr == nil {
			storeOpenErr = d.Close()
		} else {
			d.Close()
		}
	})
	return storeOpenDir, storeOpenErr
}

// StoreOpen measures reopening a compacted 4096-point store — the
// daemon-restart path. A v2 open reads only the block index, so the cost
// must stay flat in point count instead of scaling with it like the
// JSON-lines parse did. Closing an untouched store leaves no residue, so
// every iteration sees the identical directory.
func StoreOpen(b *testing.B) {
	dir, err := storeOpenFixture()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := resultstore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if d.Persisted() != storeOpenFixtureSize {
			b.Fatalf("opened %d records, want %d", d.Persisted(), storeOpenFixtureSize)
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// storeAppendBatch is one op's worth of commits — enough that the
// per-record append cost dominates the fixed open/close cost.
const storeAppendBatch = 512

// StoreAppend measures the persist hot path: open a fresh store, commit
// a batch of evaluated points, close. Each iteration works in its own
// directory, removed off the clock, so disk usage stays bounded.
func StoreAppend(b *testing.B) {
	root := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp(root, "op")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		d, err := resultstore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < storeAppendBatch; j++ {
			k, res := resultstore.SyntheticRecord(j)
			d.Commit(k, res, nil)
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

var (
	streamOutsOnce sync.Once
	streamOuts     []scenario.Outcome
	streamOutsErr  error
	streamSink     int
)

// PointsStreamed measures the NDJSON streaming encoder over the 16-point
// beyond-dram sweep — the bytes nvmserve writes per outcomes request.
// Steady state allocates nothing per point (the zero-alloc contract the
// ndjson tests pin), so the tracked allocs/op budget is zero.
func PointsStreamed(b *testing.B) {
	streamOutsOnce.Do(func() {
		var sp scenario.Spec
		if sp, streamOutsErr = scenario.ByName("beyond-dram"); streamOutsErr != nil {
			return
		}
		ctx := experiments.NewContext()
		streamOuts, streamOutsErr = ctx.RunScenario(sp)
	})
	if streamOutsErr != nil {
		b.Fatal(streamOutsErr)
	}
	var enc ndjson.Encoder
	for _, o := range streamOuts {
		streamSink += len(enc.Outcome(o)) // warm the encoder's buffer
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range streamOuts {
			streamSink += len(enc.Outcome(o))
		}
	}
}

// TrafficBursty replays the canonical bursty two-class traffic preset at
// full speed against a fresh in-process manager each iteration — the
// nvmload serving path end to end: arrival generation, concurrent
// submission, outcome streaming, per-class latency accounting. Beyond
// time and allocs it reports the critical class's p99
// admission-to-first-point latency (median across iterations) as the
// tracked extra "p99_first_point_ns" — the number the paper's serving
// story turns on, pinned so a scheduling or streaming regression that
// leaves mean throughput intact still fails the gate.
func TrafficBursty(b *testing.B) {
	sp, err := traffic.ByName("bursty-two-class")
	if err != nil {
		b.Fatal(err)
	}
	var p99s []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr := session.NewManager(engine.New(platform.NewPurley().Socket(0), runtime.GOMAXPROCS(0)))
		rep, err := traffic.Replay(context.Background(), traffic.NewManagerTarget(mgr), sp,
			traffic.Options{FullSpeed: true, MaxInFlight: 16})
		mgr.Close()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatalf("replay not clean: %+v", rep.Total)
		}
		for _, c := range rep.Classes {
			if c.Class == traffic.Critical {
				p99s = append(p99s, c.FirstPoint.P99)
			}
		}
	}
	b.ReportMetric(median(p99s)*1e9, "p99_first_point_ns")
}

// fleetFixture holds the process-lifetime benchmark fleet: one
// coordinator behind an httptest server with four in-process workers
// joined — built once, reused by every iteration, like the store
// fixture above.
var (
	fleetOnce  sync.Once
	fleetCoord *fleet.Coordinator
	fleetErr   error
	fleetSeq   atomic.Uint64
)

func fleetFixture() (*fleet.Coordinator, error) {
	fleetOnce.Do(func() {
		fleetCoord = fleet.New(engine.New(platform.NewPurley().Socket(0), 4), fleet.Options{
			Heartbeat: 100 * time.Millisecond,
			Poll:      100 * time.Millisecond,
		})
		mux := http.NewServeMux()
		fleetCoord.Routes(mux)
		ts := httptest.NewServer(mux)
		for i := 0; i < 4; i++ {
			w := &fleet.Worker{
				Base: ts.URL,
				Eng:  engine.New(platform.NewPurley().Socket(0), 1),
				Name: fmt.Sprintf("bench-%d", i),
			}
			go w.Run(context.Background())
		}
		deadline := time.Now().Add(10 * time.Second)
		for fleetCoord.Workers() < 4 {
			if time.Now().After(deadline) {
				fleetErr = fmt.Errorf("benchkit: only %d/4 fleet workers joined", fleetCoord.Workers())
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
	return fleetCoord, fleetErr
}

// FleetScheduler measures one cold fleet dispatch round: a fresh
// 64-point sweep (unique Scales values per iteration, so nothing is
// cached) sharded into 16 chunks, pulled by four in-process workers
// over loopback HTTP, evaluated, posted back and committed — the whole
// coordinator/scheduler/worker path that internal/fleet adds over a
// local batch.
func FleetScheduler(b *testing.B) {
	coord, err := fleetFixture()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := fleetSeq.Add(1) * 16
		scales := make([]float64, 16)
		for j := range scales {
			scales[j] = 1 + float64(base+uint64(j))*1e-3
		}
		sp := scenario.Spec{
			Name:    "bench-fleet",
			Apps:    []string{"XSBench"},
			Modes:   []memsys.Mode{memsys.DRAMOnly, memsys.CachedNVM},
			Threads: []int{24, 48},
			Scales:  scales,
		}
		_, jobs, err := sp.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if err := coord.ExecuteBatch(context.Background(), sp, jobs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

var fleetWinSeq atomic.Uint64

// FleetDispatchWindowed measures one 4096-point cold sweep through the
// windowed dispatcher: 1024 fresh Scales values per iteration (a
// different app than FleetScheduler, so the two benches never share
// cache keys), carved adaptively under the per-worker window, pulled in
// multi-chunk long-polls and posted back as gzip-coalesced batches by
// the four fixture workers. Reports the gated per_point_ns and the
// informational points_per_sec — the fleet's sustained dispatch
// throughput at depth.
func FleetDispatchWindowed(b *testing.B) {
	coord, err := fleetFixture()
	if err != nil {
		b.Fatal(err)
	}
	const pointsPerOp = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := fleetWinSeq.Add(1) * (pointsPerOp / 4)
		scales := make([]float64, pointsPerOp/4)
		for j := range scales {
			scales[j] = 1 + float64(base+uint64(j))*1e-3
		}
		sp := scenario.Spec{
			Name:    "bench-fleet-windowed",
			Apps:    []string{"Hypre"},
			Modes:   []memsys.Mode{memsys.DRAMOnly, memsys.CachedNVM},
			Threads: []int{24, 48},
			Scales:  scales,
		}
		_, jobs, err := sp.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(jobs) != pointsPerOp {
			b.Fatalf("expanded %d jobs, want %d", len(jobs), pointsPerOp)
		}
		if err := coord.ExecuteBatch(context.Background(), sp, jobs, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(b.N) * pointsPerOp
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "per_point_ns")
	b.ReportMetric(total/b.Elapsed().Seconds(), "points_per_sec")
}

// wireFixture builds one realistic coalesced result batch — 256
// engine-evaluated points in four 64-point chunks, Workload descriptors
// stripped as on the wire — plus the byte size the same points cost as
// plain per-chunk JSON posts (the pre-batching wire format).
var (
	wireOnce       sync.Once
	wireBatch      fleet.ResultBatch
	wirePlainBytes int
	wireErr        error
)

func wireFixture() (fleet.ResultBatch, int, error) {
	wireOnce.Do(func() {
		sp := scenario.Spec{
			Name:    "bench-fleet-wire",
			Apps:    []string{"XSBench"},
			Modes:   []memsys.Mode{memsys.DRAMOnly, memsys.CachedNVM},
			Threads: []int{24, 48},
			Scales:  make([]float64, 64),
		}
		for i := range sp.Scales {
			sp.Scales[i] = 1 + float64(i)/512
		}
		_, jobs, err := sp.Expand()
		if err != nil {
			wireErr = err
			return
		}
		eng := engine.New(platform.NewPurley().Socket(0), 1)
		wireBatch = fleet.ResultBatch{WorkerID: "w-000001"}
		for lo := 0; lo < len(jobs); lo += 64 {
			cr := fleet.ChunkResult{WorkerID: "w-000001", ChunkID: uint64(1 + lo/64), ElapsedUS: 1000}
			for i := lo; i < min(lo+64, len(jobs)); i++ {
				res, err := eng.Run(jobs[i])
				if err != nil {
					wireErr = err
					return
				}
				res.Workload = nil
				cr.Points = append(cr.Points, fleet.PointResult{Index: i, Result: &res})
			}
			body, err := json.Marshal(cr)
			if err != nil {
				wireErr = err
				return
			}
			wirePlainBytes += len(body)
			wireBatch.Results = append(wireBatch.Results, cr)
		}
	})
	return wireBatch, wirePlainBytes, wireErr
}

// FleetWirePoint measures serializing that batch exactly as the worker
// result path does (pooled JSON encode + gzip) and reports what a point
// costs on the wire: bytes_per_point_plain is the pre-batching format
// (one JSON document per chunk, uncompressed), bytes_per_point_gzip the
// coalesced compressed batch. Both extras are informational; ns/op and
// allocs/op carry the gate.
func FleetWirePoint(b *testing.B) {
	rb, plainBytes, err := wireFixture()
	if err != nil {
		b.Fatal(err)
	}
	points := 0
	for i := range rb.Results {
		points += len(rb.Results[i].Points)
	}
	gzBytes := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, gzipped, err := fleet.EncodeResultBatch(rb)
		if err != nil {
			b.Fatal(err)
		}
		if !gzipped {
			b.Fatal("result batch below the compression floor")
		}
		gzBytes = len(body)
	}
	b.StopTimer()
	b.ReportMetric(float64(plainBytes)/float64(points), "bytes_per_point_plain")
	b.ReportMetric(float64(gzBytes)/float64(points), "bytes_per_point_gzip")
}

// EngineCacheHit measures a fully cached engine evaluation — the common
// case inside overlapping sweeps.
func EngineCacheHit(b *testing.B) {
	ctx := experiments.NewContext()
	job := engine.Job{Workload: dwarfs.All()[0].New(), Mode: memsys.CachedNVM, Threads: 48}
	if _, err := ctx.Engine.Run(job); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Engine.Run(job); err != nil {
			b.Fatal(err)
		}
	}
}
