package benchkit

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func baseSuite() Suite {
	return Suite{
		GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64",
		CalibrationNs: 1000,
		Records: []Record{
			{Name: "BenchmarkA", Iterations: 100, NsPerOp: 500, BytesPerOp: 64, AllocsPerOp: 3},
			{Name: "BenchmarkB", Iterations: 100, NsPerOp: 2000, BytesPerOp: 0, AllocsPerOp: 0, AllocSlack: 2},
		},
	}
}

func TestGateClean(t *testing.T) {
	base := baseSuite()
	cur := baseSuite()
	if regs := Gate(base, cur, 0.10); len(regs) != 0 {
		t.Fatalf("identical suites should pass, got %v", regs)
	}
}

func TestGateAllocRegression(t *testing.T) {
	base := baseSuite()
	cur := baseSuite()
	cur.Records[0].AllocsPerOp = 4 // slack 0: fails
	cur.Records[1].AllocsPerOp = 2 // slack 2: tolerated
	regs := Gate(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Name != "BenchmarkA" || regs[0].Kind != "allocs/op" {
		t.Fatalf("want one allocs/op regression on BenchmarkA, got %v", regs)
	}
	cur.Records[1].AllocsPerOp = 3 // now past its slack
	if regs := Gate(base, cur, 0.10); len(regs) != 2 {
		t.Fatalf("want both benches flagged, got %v", regs)
	}
}

// Time gating is calibration-normalized: a uniformly slower machine
// (every number doubled, including the spin) must pass, a genuinely
// slower benchmark must fail.
func TestGateTimeNormalization(t *testing.T) {
	base := baseSuite()
	slowMachine := baseSuite()
	slowMachine.CalibrationNs *= 2
	for i := range slowMachine.Records {
		slowMachine.Records[i].NsPerOp *= 2
	}
	if regs := Gate(base, slowMachine, 0.10); len(regs) != 0 {
		t.Fatalf("uniformly slower machine should pass the normalized gate, got %v", regs)
	}

	slowBench := baseSuite()
	slowBench.Records[0].NsPerOp *= 1.25
	regs := Gate(base, slowBench, 0.10)
	if len(regs) != 1 || regs[0].Kind != "time/op" {
		t.Fatalf("want one time/op regression, got %v", regs)
	}
	if regs[0].Ratio < 1.2 || regs[0].Ratio > 1.3 {
		t.Fatalf("ratio = %v, want ~1.25", regs[0].Ratio)
	}
}

// A record's TimeSlack widens its own time tolerance without touching
// the others — the escape hatch for latency-bound microbenches the
// calibration spin normalizes poorly.
func TestGateTimeSlackPerRecord(t *testing.T) {
	base := baseSuite()
	base.Records[0].TimeSlack = 0.50
	cur := baseSuite()
	cur.Records[0].NsPerOp *= 1.4 // within 10%+50%
	cur.Records[1].NsPerOp *= 1.4 // past plain 10%
	regs := Gate(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Name != "BenchmarkB" || regs[0].Kind != "time/op" {
		t.Fatalf("want only BenchmarkB flagged, got %v", regs)
	}
}

// Without calibration (a hand-rolled or historical suite) time is
// informational only; allocs still gate.
func TestGateSkipsTimeWithoutCalibration(t *testing.T) {
	base := baseSuite()
	base.CalibrationNs = 0
	cur := baseSuite()
	cur.Records[0].NsPerOp *= 10
	if regs := Gate(base, cur, 0.10); len(regs) != 0 {
		t.Fatalf("time gate should be skipped without calibration, got %v", regs)
	}
}

func TestGateMissingBench(t *testing.T) {
	base := baseSuite()
	cur := baseSuite()
	cur.Records = cur.Records[:1]
	regs := Gate(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Kind != "missing" || regs[0].Name != "BenchmarkB" {
		t.Fatalf("want BenchmarkB flagged missing, got %v", regs)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	before := baseSuite()
	doc := Baseline{Note: "test", Before: &before, Suite: baseSuite()}
	if err := doc.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Note != "test" || back.Before == nil || len(back.Suite.Records) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if !reflect.DeepEqual(back.Suite.Records[0], doc.Suite.Records[0]) {
		t.Fatalf("record changed: %+v vs %+v", back.Suite.Records[0], doc.Suite.Records[0])
	}
}

func TestLoadRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	if err := (Baseline{}).Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("empty baseline should be rejected")
	}
}

func TestGoBenchText(t *testing.T) {
	out := baseSuite().GoBenchText()
	if !strings.Contains(out, "BenchmarkA") || !strings.Contains(out, "ns/op") || !strings.Contains(out, "allocs/op") {
		t.Fatalf("not go-bench formatted:\n%s", out)
	}
	if !strings.HasPrefix(out, "goos: linux") {
		t.Fatalf("missing goos header:\n%s", out)
	}
}

// The tracked set must stay measurable end to end: run the cheapest
// tracked bench through testing.Benchmark via Measure's machinery. Uses
// a tiny inline bench to keep the suite fast; the full set runs in CI's
// bench job and via nvmbench -bench-json.
func TestMeasureRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("measuring spins ~2s of wall clock")
	}
	var sink []byte
	s := Measure([]Bench{{Name: "BenchmarkTiny", AllocSlack: 1, F: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = make([]byte, 16)
		}
	}}})
	_ = sink
	if s.CalibrationNs <= 0 {
		t.Fatalf("calibration = %v, want > 0", s.CalibrationNs)
	}
	if len(s.Records) != 1 || s.Records[0].Name != "BenchmarkTiny" {
		t.Fatalf("records = %+v", s.Records)
	}
	r := s.Records[0]
	if r.Iterations <= 0 || r.NsPerOp <= 0 || r.AllocsPerOp != 1 || r.AllocSlack != 1 {
		t.Fatalf("record = %+v", r)
	}
}

func TestTrackedWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Tracked() {
		if b.Name == "" || b.F == nil {
			t.Fatalf("malformed tracked bench %+v", b)
		}
		if !strings.HasPrefix(b.Name, "Benchmark") {
			t.Errorf("%s: tracked names must match go test -bench output", b.Name)
		}
		if seen[b.Name] {
			t.Errorf("duplicate tracked bench %s", b.Name)
		}
		seen[b.Name] = true
	}
}

// Extras gate like time/op: calibration-normalized, under the record's
// TimeSlack, and a vanished extra is flagged missing.
func TestGateExtras(t *testing.T) {
	base := Suite{
		CalibrationNs: 1000,
		Records: []Record{{
			Name: "BenchmarkLoad", NsPerOp: 500,
			Extras: map[string]float64{"p99_first_point_ns": 2e6},
		}},
	}
	ok := Suite{
		CalibrationNs: 1000,
		Records: []Record{{
			Name: "BenchmarkLoad", NsPerOp: 500,
			Extras: map[string]float64{"p99_first_point_ns": 2.1e6},
		}},
	}
	if regs := Gate(base, ok, 0.10); len(regs) != 0 {
		t.Fatalf("5%% extra drift within tolerance flagged: %v", regs)
	}
	slow := Suite{
		CalibrationNs: 1000,
		Records: []Record{{
			Name: "BenchmarkLoad", NsPerOp: 500,
			Extras: map[string]float64{"p99_first_point_ns": 3e6},
		}},
	}
	regs := Gate(base, slow, 0.10)
	if len(regs) != 1 || regs[0].Kind != "extra:p99_first_point_ns" {
		t.Fatalf("50%% extra regression not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "p99_first_point_ns") {
		t.Errorf("regression text %q does not name the metric", regs[0])
	}
	// A faster calibration spin on the current host excuses a
	// proportionally slower raw number.
	fast := Suite{
		CalibrationNs: 2000,
		Records: []Record{{
			Name: "BenchmarkLoad", NsPerOp: 1000,
			Extras: map[string]float64{"p99_first_point_ns": 4e6},
		}},
	}
	if regs := Gate(base, fast, 0.10); len(regs) != 0 {
		t.Fatalf("normalized extra flagged: %v", regs)
	}
	gone := Suite{
		CalibrationNs: 1000,
		Records:       []Record{{Name: "BenchmarkLoad", NsPerOp: 500}},
	}
	regs = Gate(base, gone, 0.10)
	if len(regs) != 1 || regs[0].Kind != "missing" || regs[0].Name != "BenchmarkLoad/p99_first_point_ns" {
		t.Fatalf("dropped extra not flagged missing: %v", regs)
	}
}
