package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream should differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split child matches parent too often: %d/100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63n(t *testing.T) {
	r := New(11)
	const n = int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestNorm(t *testing.T) {
	r := New(13)
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Errorf("Norm std = %v, want ~2", std)
	}
}

func TestExp(t *testing.T) {
	r := New(17)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("Exp(4) mean = %v, want ~0.25", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := New(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 45 {
		t.Errorf("Shuffle lost elements: %v (was %v)", xs, orig)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf(1.0) not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Roughly: P(0)/P(1) ~ 2 for s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.5 || ratio > 2.7 {
		t.Errorf("Zipf head ratio = %v, want ~2", ratio)
	}
}

func TestZipfUniformExponentZero(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Zipf(0) bucket %d count %d, want ~10000", i, c)
		}
	}
}

// Property: Range stays within bounds for any ordered pair.
func TestRangeProperty(t *testing.T) {
	r := New(37)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e150 || math.Abs(b) > 1e150 {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		v := r.Range(lo, hi)
		return v >= lo && v < hi || v == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
