// Package xrand provides a deterministic, splittable pseudo-random number
// generator (xoshiro256**) plus the distributions the simulator needs.
//
// Every stochastic component of the simulator (address-stream generators,
// measurement noise in synthesised hardware counters, Monte Carlo lookup
// sequences) takes an explicit *xrand.Rand so that experiments are exactly
// reproducible across runs and platforms. math/rand is avoided to keep the
// generator's sequence stable regardless of Go version.
package xrand

import "math"

// Rand is a xoshiro256** generator. The zero value is invalid; construct
// with New.
type Rand struct {
	s [4]uint64
}

// splitmix64 is used to expand a single seed into a full xoshiro state and
// to derive child seeds in Split.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds give
// independent-looking streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A state of all zeros is a fixed point; splitmix64 never produces it
	// from four consecutive outputs, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child generator. The parent advances by one
// draw; the child's stream does not overlap the parent's in practice.
func (r *Rand) Split() *Rand {
	seed := r.Uint64()
	return New(seed ^ 0xda3e39cb94b95bdb)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Range returns a uniform float in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *Rand) Norm(mean, stddev float64) float64 {
	// Avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate).
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws from a bounded Zipf distribution over [0, n) with exponent s.
// Sampling uses inverse-CDF over precomputed weights held by the Zipf
// struct; construct with NewZipf for repeated draws.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf prepares a Zipf sampler over [0, n) with exponent s > 0.
// XSBench-style unionized-grid lookups are approximately uniform, but the
// flux-weighted variant is Zipf-like; both are exercised in tests.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Draw returns the next Zipf-distributed index in [0, n).
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
