package faultline

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan([]byte(`{"seed": 7, "rules": [
		{"op": "write", "prob": 0.25, "kind": "short"},
		{"op": "read", "path": ".seg", "nth": 3, "kind": "flip"},
		{"op": "sync", "nth": 1},
		{"op": "open", "prob": 1, "kind": "delay", "delay_ms": 0.5}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 4 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Rules[1].Path != ".seg" || p.Rules[1].Nth != 3 || p.Rules[1].Kind != Flip {
		t.Fatalf("rules[1] = %+v", p.Rules[1])
	}

	bad := []string{
		`{"rules": [{"op": "chmod", "nth": 1}]}`,            // unknown op
		`{"rules": [{"op": "write", "nth": 1, "prob": 1}]}`, // nth+prob
		`{"rules": [{"op": "write"}]}`,                      // no trigger
		`{"rules": [{"op": "write", "prob": 2}]}`,           // prob > 1
		`{"rules": [{"op": "write", "nth": 1, "kind": "melt"}]}`,
		`{"rules": [{"op": "write", "nth": 1, "kind": "delay"}]}`, // delay w/o delay_ms
		`{"rules": [{"op": "write", "nth": 1}], "extra": true}`,   // unknown field
	}
	for _, s := range bad {
		if _, err := ParsePlan([]byte(s)); err == nil {
			t.Errorf("ParsePlan(%s) accepted invalid plan", s)
		}
	}
}

// TestDeterministicSequence pins the acceptance criterion: the same
// seed and plan produce the identical fault sequence, run after run.
func TestDeterministicSequence(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{
		{Op: OpWrite, Prob: 0.3, Kind: Short},
		{Op: OpSync, Nth: 2},
		{Op: OpRead, Prob: 0.5, Kind: Flip},
	}}
	run := func() []Event {
		in := NewOver(plan, discard{})
		f, err := in.OpenFile("x", os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			f.Write([]byte("0123456789"))
			f.Sync()
			f.Read(make([]byte, 8))
		}
		return in.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("plan injected nothing over 60 operations")
	}
	if len(a) != len(b) {
		t.Fatalf("runs injected %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// And the sequence is a pure function of the seed: a different seed
	// yields a different probabilistic schedule (Nth rules excluded).
	plan2 := plan
	plan2.Seed = 43
	in2 := NewOver(plan2, discard{})
	f, _ := in2.OpenFile("x", os.O_WRONLY, 0o644)
	for i := 0; i < 20; i++ {
		f.Write([]byte("0123456789"))
		f.Sync()
		f.Read(make([]byte, 8))
	}
	c := in2.Events()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical fault sequences")
	}
}

// TestDeterministicUnderConcurrency: the set of (rule, N) decisions is
// interleaving-independent even when operations race.
func TestDeterministicUnderConcurrency(t *testing.T) {
	plan := Plan{Seed: 9, Rules: []Rule{{Op: OpWrite, Prob: 0.4}}}
	run := func() map[Event]bool {
		in := NewOver(plan, discard{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f, _ := in.OpenFile("x", os.O_WRONLY, 0o644)
				for i := 0; i < 25; i++ {
					f.Write([]byte("abcdef"))
				}
			}()
		}
		wg.Wait()
		set := make(map[Event]bool)
		for _, e := range in.Events() {
			set[e] = true
		}
		return set
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults injected")
	}
	if len(a) != len(b) {
		t.Fatalf("decision sets differ in size: %d vs %d", len(a), len(b))
	}
	for e := range a {
		if !b[e] {
			t.Fatalf("decision %+v in run A only", e)
		}
	}
}

func TestKinds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.log")
	if err := os.WriteFile(path, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("fail", func(t *testing.T) {
		in := New(Plan{Rules: []Rule{{Op: OpOpen, Nth: 1}}})
		if _, err := in.Open(path); !errors.Is(err, ErrInjected) {
			t.Fatalf("Open err = %v, want ErrInjected", err)
		}
		if f, err := in.Open(path); err != nil { // nth=1 only fires once
			t.Fatalf("second Open: %v", err)
		} else {
			f.Close()
		}
	})

	t.Run("short", func(t *testing.T) {
		p := filepath.Join(dir, "short.log")
		in := New(Plan{Rules: []Rule{{Op: OpWrite, Nth: 1, Kind: Short}}})
		f, err := in.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		n, err := f.Write([]byte("0123456789"))
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("Write err = %v, want ErrInjected", err)
		}
		if n != 5 {
			t.Fatalf("short write wrote %d bytes, want 5", n)
		}
		f.Close()
		data, _ := os.ReadFile(p)
		if string(data) != "01234" {
			t.Fatalf("file = %q, want torn half", data)
		}
	})

	t.Run("flip", func(t *testing.T) {
		in := New(Plan{Rules: []Rule{{Op: OpRead, Nth: 1, Kind: Flip}}})
		got, err := in.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) == "hello world" {
			t.Fatal("flip read returned pristine data")
		}
		diff := 0
		for i := range got {
			diff += popcount(got[i] ^ "hello world"[i])
		}
		if diff != 1 {
			t.Fatalf("flip changed %d bits, want exactly 1", diff)
		}
	})

	t.Run("torn-rename", func(t *testing.T) {
		src := filepath.Join(dir, "compact.tmp")
		dst := filepath.Join(dir, "compact.seg")
		if err := os.WriteFile(src, []byte("0123456789abcdef"), 0o644); err != nil {
			t.Fatal(err)
		}
		in := New(Plan{Rules: []Rule{{Op: OpRename, Nth: 1, Kind: Torn}}})
		if err := in.Rename(src, dst); !errors.Is(err, ErrInjected) {
			t.Fatalf("Rename err = %v, want ErrInjected", err)
		}
		data, err := os.ReadFile(dst)
		if err != nil {
			t.Fatal("torn rename left no destination:", err)
		}
		if string(data) != "01234567" {
			t.Fatalf("destination = %q, want truncated half", data)
		}
		if _, err := os.Stat(src); err != nil {
			t.Fatal("torn rename removed the source:", err)
		}
	})

	t.Run("delay", func(t *testing.T) {
		in := New(Plan{Rules: []Rule{{Op: OpSync, Nth: 1, Kind: Delay, DelayMs: 2}}})
		var slept time.Duration
		in.sleep = func(d time.Duration) { slept = d }
		f, err := in.OpenFile(filepath.Join(dir, "d.log"), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := f.Sync(); err != nil {
			t.Fatal("delay must not fail the op:", err)
		}
		if slept != 2*time.Millisecond {
			t.Fatalf("slept %v, want 2ms", slept)
		}
	})

	t.Run("path-filter", func(t *testing.T) {
		in := New(Plan{Rules: []Rule{{Op: OpRead, Path: ".seg", Prob: 1}}})
		if _, err := in.ReadFile(path); err != nil {
			t.Fatalf("non-matching path perturbed: %v", err)
		}
		if in.Injected() != 0 {
			t.Fatal("rule fired on non-matching path")
		}
	})
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}
	if err := fs.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "a/b/x.log")
	f, err := fs.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := fs.ReadFile(p)
	if err != nil || string(got) != "data" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	ents, err := fs.ReadDir(filepath.Join(dir, "a/b"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.Rename(p, p+".2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(p + ".2"); err != nil {
		t.Fatal(err)
	}
}

func TestErrInjectedWrapped(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Op: OpRemove, Nth: 1}}})
	err := in.Remove("/nonexistent")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrap of ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "rule 0") {
		t.Fatalf("err %q does not name its rule", err)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// discard is an FS whose files swallow writes and serve zero reads —
// enough surface for decision-sequence tests with no disk behind them.
type discard struct{}

func (discard) MkdirAll(string, os.FileMode) error    { return nil }
func (discard) ReadDir(string) ([]os.DirEntry, error) { return nil, nil }
func (discard) ReadFile(string) ([]byte, error)       { return nil, nil }
func (discard) Rename(string, string) error           { return nil }
func (discard) Remove(string) error                   { return nil }
func (discard) Open(string) (File, error)             { return discardFile{}, nil }
func (discard) OpenFile(string, int, os.FileMode) (File, error) {
	return discardFile{}, nil
}

type discardFile struct{}

func (discardFile) Read(p []byte) (int, error)            { return len(p), nil }
func (discardFile) ReadAt(p []byte, _ int64) (int, error) { return len(p), nil }
func (discardFile) Write(p []byte) (int, error)           { return len(p), nil }
func (discardFile) Close() error                          { return nil }
func (discardFile) Sync() error                           { return nil }
func (discardFile) Stat() (os.FileInfo, error)            { return nil, os.ErrInvalid }
