package faultline

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Op classifies the filesystem operations a rule can match.
type Op string

const (
	// OpOpen matches Open and OpenFile.
	OpOpen Op = "open"
	// OpRead matches File.Read, File.ReadAt and FS.ReadFile.
	OpRead Op = "read"
	// OpWrite matches File.Write.
	OpWrite Op = "write"
	// OpSync matches File.Sync.
	OpSync Op = "sync"
	// OpRename matches FS.Rename (the path filter tests the new path).
	OpRename Op = "rename"
	// OpRemove matches FS.Remove.
	OpRemove Op = "remove"
	// OpReadDir matches FS.ReadDir.
	OpReadDir Op = "readdir"
)

// Kind selects what a triggered rule does to the operation.
type Kind string

const (
	// Fail returns an injected error without performing the operation.
	// The default when a rule declares no kind.
	Fail Kind = "fail"
	// Short performs half of a write then reports an injected error —
	// the torn-append signature of a full disk or a crash mid-write.
	// On non-write operations it behaves like Fail.
	Short Kind = "short"
	// Flip performs a read then flips one deterministically chosen bit
	// of the returned data — silent media corruption. On non-read
	// operations it behaves like Fail.
	Flip Kind = "flip"
	// Torn applies to rename: it writes a truncated copy of the source
	// at the destination and reports an injected error, simulating a
	// torn rewrite that escaped the temp+rename discipline. On other
	// operations it behaves like Fail.
	Torn Kind = "torn"
	// Delay sleeps for the rule's delay, then performs the operation
	// normally — a slow device, not a broken one.
	Delay Kind = "delay"
)

// ErrInjected is wrapped by every error the injector fabricates.
var ErrInjected = errors.New("injected fault")

// File is the open-file surface the store consumes. *os.File satisfies
// it.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Sync() error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem surface the store consumes. OS passes every
// call straight through; an Injector perturbs them per its plan.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(path string) ([]os.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	Open(path string) (File, error)
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
}

// OS is the passthrough FS over the real operating system.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(path string) ([]os.DirEntry, error)   { return os.ReadDir(path) }
func (OS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (OS) Open(path string) (File, error)               { return os.Open(path) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error                     { return os.Remove(path) }
func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// Rule is one declarative fault: which operations it matches (by class
// and path substring) and when and how it fires. Exactly one of Nth
// (fire on the Nth matching operation, 1-based) or Prob (fire on each
// matching operation with this probability, drawn deterministically
// from the plan seed) selects the trigger.
type Rule struct {
	// Op is the operation class the rule matches; required.
	Op Op `json:"op"`
	// Path, when non-empty, restricts the rule to operations whose path
	// contains it as a substring.
	Path string `json:"path,omitempty"`
	// Nth fires the rule on exactly the Nth matching operation
	// (1-based). Exclusive with Prob.
	Nth int `json:"nth,omitempty"`
	// Prob fires the rule on each matching operation with this
	// probability in (0,1]. Exclusive with Nth.
	Prob float64 `json:"prob,omitempty"`
	// Kind is what the rule does when it fires; empty means fail.
	Kind Kind `json:"kind,omitempty"`
	// DelayMs is the added latency for kind "delay", in milliseconds.
	DelayMs float64 `json:"delay_ms,omitempty"`
}

// Plan is a declarative fault schedule: a seed plus an ordered rule
// list. The zero plan injects nothing.
type Plan struct {
	Seed  uint64 `json:"seed,omitempty"`
	Rules []Rule `json:"rules"`
}

func validOp(op Op) bool {
	switch op {
	case OpOpen, OpRead, OpWrite, OpSync, OpRename, OpRemove, OpReadDir:
		return true
	}
	return false
}

func validKind(k Kind) bool {
	switch k {
	case "", Fail, Short, Flip, Torn, Delay:
		return true
	}
	return false
}

// Validate checks the plan's rules.
func (p Plan) Validate() error {
	for i, r := range p.Rules {
		if !validOp(r.Op) {
			return fmt.Errorf("faultline: rules[%d]: unknown op %q (have open|read|write|sync|rename|remove|readdir)", i, r.Op)
		}
		if !validKind(r.Kind) {
			return fmt.Errorf("faultline: rules[%d]: unknown kind %q (have fail|short|flip|torn|delay)", i, r.Kind)
		}
		switch {
		case r.Nth < 0:
			return fmt.Errorf("faultline: rules[%d]: negative nth %d", i, r.Nth)
		case r.Nth > 0 && r.Prob != 0:
			return fmt.Errorf("faultline: rules[%d]: nth and prob are exclusive", i)
		case r.Nth == 0 && (r.Prob <= 0 || r.Prob > 1):
			return fmt.Errorf("faultline: rules[%d]: prob %v out of (0,1] (or set nth)", i, r.Prob)
		}
		if r.DelayMs < 0 {
			return fmt.Errorf("faultline: rules[%d]: negative delay_ms %v", i, r.DelayMs)
		}
		if r.Kind == Delay && r.DelayMs == 0 {
			return fmt.Errorf("faultline: rules[%d]: kind delay needs delay_ms", i)
		}
	}
	return nil
}

// ParsePlan decodes a strict-JSON fault plan: unknown fields are
// rejected and the plan is validated.
func ParsePlan(data []byte) (Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faultline: parsing plan: %w", err)
	}
	if dec.More() {
		return Plan{}, fmt.Errorf("faultline: plan has trailing data")
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// LoadPlan reads and parses a fault plan file.
func LoadPlan(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("faultline: %w", err)
	}
	p, err := ParsePlan(data)
	if err != nil {
		return Plan{}, fmt.Errorf("faultline: %s: %w", path, err)
	}
	return p, nil
}

// Event records one injected fault, in injection order.
type Event struct {
	Op   Op     // the perturbed operation
	Path string // the operation's path
	Rule int    // index of the rule that fired
	N    uint64 // the rule's matching-operation ordinal (1-based)
	Kind Kind   // what was done
}

// Injector wraps a base FS and perturbs operations per its plan. Safe
// for concurrent use. Construct with New.
type Injector struct {
	plan Plan
	base FS

	mu     sync.Mutex
	counts []uint64
	events []Event
	sleep  func(time.Duration) // swapped in tests
}

// New builds an injector over the real OS. The plan should be
// Validate-clean; invalid trigger fields inject nothing.
func New(plan Plan) *Injector { return NewOver(plan, OS{}) }

// NewOver builds an injector over an arbitrary base FS (injectors
// compose, and tests can stack one over an in-memory FS).
func NewOver(plan Plan, base FS) *Injector {
	return &Injector{plan: plan, base: base, counts: make([]uint64, len(plan.Rules)), sleep: time.Sleep}
}

// Events returns a copy of the injected-fault log, in injection order.
// With a single-threaded caller the log is exactly reproducible from
// the plan; under concurrency the set of (rule, N) decisions still is,
// only their interleaving varies.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Injected reports how many faults have been injected so far.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.events)
}

// splitmix64 advances x and returns the next output of the splitmix64
// sequence — the same expansion xrand uses for seeding.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// draw returns the deterministic uniform [0,1) value for the Nth match
// of rule i: a pure function of (seed, i, n), independent of every
// other rule and operation.
func (p Plan) draw(i int, n uint64) float64 {
	x := p.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	x ^= n * 0xbf58476d1ce4e5b9
	v := splitmix64(&x)
	return float64(v>>11) * (1.0 / (1 << 53))
}

// decision is the outcome of matching one operation against the plan.
type decision struct {
	fire  bool
	kind  Kind
	rule  int
	n     uint64
	delay time.Duration
	salt  uint64 // deterministic bits for flip targeting
}

// decide matches one operation against every rule in order; the first
// rule that fires wins. Matching advances each matching rule's ordinal
// counter whether or not it fires, so rule triggers stay independent.
func (in *Injector) decide(op Op, path string) decision {
	if len(in.plan.Rules) == 0 {
		return decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var d decision
	for i, r := range in.plan.Rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		in.counts[i]++
		n := in.counts[i]
		if d.fire {
			continue // a prior rule already fired; still count the match
		}
		fire := false
		switch {
		case r.Nth > 0:
			fire = n == uint64(r.Nth)
		case r.Prob > 0:
			fire = in.plan.draw(i, n) < r.Prob
		}
		if !fire {
			continue
		}
		kind := r.Kind
		if kind == "" {
			kind = Fail
		}
		x := in.plan.Seed ^ uint64(i)<<32 ^ n
		d = decision{
			fire:  true,
			kind:  kind,
			rule:  i,
			n:     n,
			delay: time.Duration(r.DelayMs * float64(time.Millisecond)),
			salt:  splitmix64(&x),
		}
		in.events = append(in.events, Event{Op: op, Path: path, Rule: i, N: n, Kind: kind})
	}
	return d
}

// errInjected fabricates the error for a fired rule.
func errInjected(d decision, op Op, path string) error {
	return fmt.Errorf("faultline: rule %d (op %d of %s %s): %w", d.rule, d.n, op, path, ErrInjected)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(path string) ([]os.DirEntry, error) {
	d := in.decide(OpReadDir, path)
	if d.fire {
		if d.kind == Delay {
			in.sleep(d.delay)
		} else {
			return nil, errInjected(d, OpReadDir, path)
		}
	}
	return in.base.ReadDir(path)
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	d := in.decide(OpRead, path)
	if d.fire {
		switch d.kind {
		case Delay:
			in.sleep(d.delay)
		case Flip:
			data, err := in.base.ReadFile(path)
			if err == nil && len(data) > 0 {
				flipBit(data, d.salt)
			}
			return data, err
		default:
			return nil, errInjected(d, OpRead, path)
		}
	}
	return in.base.ReadFile(path)
}

func (in *Injector) Open(path string) (File, error) {
	d := in.decide(OpOpen, path)
	if d.fire {
		if d.kind == Delay {
			in.sleep(d.delay)
		} else {
			return nil, errInjected(d, OpOpen, path)
		}
	}
	f, err := in.base.Open(path)
	if err != nil {
		return nil, err
	}
	return &file{f: f, in: in, path: path}, nil
}

func (in *Injector) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	d := in.decide(OpOpen, path)
	if d.fire {
		if d.kind == Delay {
			in.sleep(d.delay)
		} else {
			return nil, errInjected(d, OpOpen, path)
		}
	}
	f, err := in.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{f: f, in: in, path: path}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	d := in.decide(OpRename, newpath)
	if d.fire {
		switch d.kind {
		case Delay:
			in.sleep(d.delay)
		case Torn:
			// Simulate a torn rewrite: a truncated copy of the source
			// lands at the destination and the operation reports failure.
			if data, err := in.base.ReadFile(oldpath); err == nil {
				if f, err := in.base.OpenFile(newpath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644); err == nil {
					f.Write(data[:len(data)/2])
					f.Close()
				}
			}
			return errInjected(d, OpRename, newpath)
		default:
			return errInjected(d, OpRename, newpath)
		}
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(path string) error {
	d := in.decide(OpRemove, path)
	if d.fire {
		if d.kind == Delay {
			in.sleep(d.delay)
		} else {
			return errInjected(d, OpRemove, path)
		}
	}
	return in.base.Remove(path)
}

// flipBit flips one bit of data, chosen deterministically from salt.
func flipBit(data []byte, salt uint64) {
	if len(data) == 0 {
		return
	}
	at := salt % uint64(len(data))
	data[at] ^= 1 << ((salt >> 32) % 8)
}

// file wraps an open file so reads, writes and syncs pass through the
// injector's plan.
type file struct {
	f    File
	in   *Injector
	path string
}

func (f *file) Read(p []byte) (int, error) {
	d := f.in.decide(OpRead, f.path)
	if d.fire {
		switch d.kind {
		case Delay:
			f.in.sleep(d.delay)
		case Flip:
			n, err := f.f.Read(p)
			if n > 0 {
				flipBit(p[:n], d.salt)
			}
			return n, err
		default:
			return 0, errInjected(d, OpRead, f.path)
		}
	}
	return f.f.Read(p)
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	d := f.in.decide(OpRead, f.path)
	if d.fire {
		switch d.kind {
		case Delay:
			f.in.sleep(d.delay)
		case Flip:
			n, err := f.f.ReadAt(p, off)
			if n > 0 {
				flipBit(p[:n], d.salt)
			}
			return n, err
		default:
			return 0, errInjected(d, OpRead, f.path)
		}
	}
	return f.f.ReadAt(p, off)
}

func (f *file) Write(p []byte) (int, error) {
	d := f.in.decide(OpWrite, f.path)
	if d.fire {
		switch d.kind {
		case Delay:
			f.in.sleep(d.delay)
		case Short:
			n, _ := f.f.Write(p[:len(p)/2])
			return n, errInjected(d, OpWrite, f.path)
		default:
			return 0, errInjected(d, OpWrite, f.path)
		}
	}
	return f.f.Write(p)
}

func (f *file) Sync() error {
	d := f.in.decide(OpSync, f.path)
	if d.fire {
		if d.kind == Delay {
			f.in.sleep(d.delay)
		} else {
			return errInjected(d, OpSync, f.path)
		}
	}
	return f.f.Sync()
}

func (f *file) Close() error               { return f.f.Close() }
func (f *file) Stat() (os.FileInfo, error) { return f.f.Stat() }
