// Package faultline is a deterministic, seeded fault-injection layer
// for the stack's I/O seams. It exposes the small filesystem surface
// the result store consumes (FS, File), a transparent passthrough to
// the real OS (OS), and an Injector that wraps any FS and perturbs it
// according to a declarative Plan: fail the Nth matching operation,
// fail operations probabilistically from a seed, cut writes short,
// tear renames, flip bits on reads, or add latency.
//
// Determinism is the design center: whether the Nth operation matching
// a rule is perturbed is a pure function of (plan seed, rule index, N)
// — a splitmix64 hash, no shared RNG stream — so the same plan and
// seed produce the identical fault sequence on every run and on every
// machine, regardless of how goroutines interleave the operations in
// between. Chaos tests pin recovery behaviour against that sequence
// instead of against luck.
//
// Plans are strict JSON (unknown fields rejected), so a chaos harness
// can ship them as files next to scenario and traffic specs (the CI
// chaos drill's plan lives at faultplans/chaos-1pct.json):
//
//	{"seed": 7, "rules": [
//	  {"op": "write", "prob": 0.01, "kind": "short"},
//	  {"op": "read", "path": ".seg", "nth": 3, "kind": "flip"}
//	]}
//
// Every injected error wraps ErrInjected, so recovery code under test
// can tell injected faults from real ones.
package faultline
