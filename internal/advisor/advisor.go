// Package advisor turns the paper's findings into an actionable
// decision API for application developers targeting NVM-based main
// memory. It implements the four insights of Section IV plus the
// Section IV-C susceptibility indicator:
//
//   - Insight I:  low-bandwidth applications (N-body, unstructured FEM)
//     can be ported to uncached NVM with negligible loss;
//   - Insight II: sparse/grid applications benefit from cached-NVM to
//     run problems beyond DRAM capacity;
//   - Insight III: phases with low read/write ratio and high write
//     bandwidth are susceptible to write throttling and must be the
//     optimization priority;
//   - Insight IV: concurrency changes have a diverging effect on reads
//     and writes — prefer write-aware placement over global concurrency
//     tuning.
package advisor

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/memsys"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// Tier is the paper's three-way sensitivity classification.
type Tier int

const (
	Insensitive Tier = iota
	Scaled
	Bottlenecked
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Insensitive:
		return "insensitive"
	case Scaled:
		return "scaled"
	default:
		return "bottlenecked"
	}
}

// ClassifyTier applies the paper's slowdown bands.
func ClassifyTier(slowdown float64) Tier {
	switch {
	case slowdown < 1.5:
		return Insensitive
	case slowdown < 6.0:
		return Scaled
	default:
		return Bottlenecked
	}
}

// PhaseRisk assesses one phase's write-throttling susceptibility.
type PhaseRisk struct {
	Phase string
	// WriteBW is the phase's demanded write bandwidth.
	WriteBW units.Bandwidth
	// Threshold is the NVM write capability for the phase's pattern and
	// concurrency — the paper's empirical ~2 GB/s level.
	Threshold units.Bandwidth
	// ReadWriteRatio is the demanded read/write traffic ratio; values
	// near or below ~3 with high write bandwidth mark throttling risk.
	ReadWriteRatio float64
	// Susceptible is the Section IV-C indicator: demanded writes exceed
	// the capability (the phase will throttle, dragging reads with it).
	Susceptible bool
}

// Advice is the full recommendation for a workload.
type Advice struct {
	App  string
	Tier Tier
	// UncachedSlowdown is the modelled uncached-NVM slowdown driving
	// the tier.
	UncachedSlowdown float64
	// CachedLoss is the modelled cached-NVM loss versus DRAM.
	CachedLoss float64
	// Risks lists write-throttling assessments per phase.
	Risks []PhaseRisk
	// RecommendPlacement is set when write-aware placement is expected
	// to pay off (write-bound on NVM with a declared structure profile).
	RecommendPlacement bool
	// RecommendCachedForLargeProblems is Insight II: the app tolerates
	// beyond-DRAM footprints on cached-NVM.
	RecommendCachedForLargeProblems bool
	// Summary is the human-readable recommendation.
	Summary string
}

// Analyze evaluates a workload on the socket and produces the
// recommendation. It builds a transient engine; callers holding one (a
// shared result cache or disk store) should use AnalyzeEngine.
func Analyze(w *workload.Workload, sock *platform.Socket, threads int) (Advice, error) {
	return AnalyzeEngine(engine.New(sock, 0), w, threads)
}

// AnalyzeEngine produces the recommendation with both configuration
// evaluations flowing through the engine — cached, persisted by a disk
// result store, and shared with any sweep that already computed the
// same points.
func AnalyzeEngine(eng *engine.Engine, w *workload.Workload, threads int) (Advice, error) {
	if err := w.Validate(); err != nil {
		return Advice{}, err
	}
	sock := eng.Socket()
	ures, err := eng.Run(engine.Job{Workload: w, Mode: memsys.UncachedNVM, Threads: threads, Origin: "advisor-" + w.Name})
	if err != nil {
		return Advice{}, err
	}
	cres, err := eng.Run(engine.Job{Workload: w, Mode: memsys.CachedNVM, Threads: threads, Origin: "advisor-" + w.Name})
	if err != nil {
		return Advice{}, err
	}

	adv := Advice{
		App:              w.Name,
		UncachedSlowdown: ures.Slowdown,
		CachedLoss:       cres.Slowdown - 1,
		Tier:             ClassifyTier(ures.Slowdown),
	}

	writeBound := false
	for _, ph := range w.Phases {
		thr := sock.NVM.WriteThrottleThreshold(ph.WritePattern, threads)
		risk := PhaseRisk{
			Phase:          ph.Name,
			WriteBW:        ph.WriteBW,
			Threshold:      thr,
			ReadWriteRatio: units.Ratio(float64(ph.ReadBW), float64(ph.WriteBW)),
			Susceptible:    ph.WriteBW > thr,
		}
		adv.Risks = append(adv.Risks, risk)
		if risk.Susceptible {
			writeBound = true
		}
	}
	adv.RecommendPlacement = writeBound && len(w.Structures) > 0
	// Insight II: cached-NVM is worthwhile for large problems when the
	// in-capacity loss is modest and the app is not insensitive anyway.
	adv.RecommendCachedForLargeProblems = adv.CachedLoss < 0.35 && adv.Tier != Insensitive

	adv.Summary = summarize(adv)
	return adv, nil
}

func summarize(a Advice) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s tier (uncached %.2fx, cached +%.0f%%). ",
		a.App, a.Tier, a.UncachedSlowdown, 100*a.CachedLoss)
	switch a.Tier {
	case Insensitive:
		b.WriteString("Direct port to NVM-based memory is safe (Insight I). ")
	case Scaled:
		b.WriteString("Expect the DRAM/NVM capability gap; cached-NVM recovers most of it. ")
	case Bottlenecked:
		b.WriteString("Write throttling dominates; prioritize the write-heavy phases (Insight III). ")
	}
	var hot []string
	for _, r := range a.Risks {
		if r.Susceptible {
			hot = append(hot, r.Phase)
		}
	}
	if len(hot) > 0 {
		fmt.Fprintf(&b, "Throttling-susceptible phases: %s. ", strings.Join(hot, ", "))
	}
	if a.RecommendPlacement {
		b.WriteString("Write-aware placement recommended over global concurrency tuning (Insight IV). ")
	}
	if a.RecommendCachedForLargeProblems {
		b.WriteString("Cached-NVM is suitable for beyond-DRAM problem sizes (Insight II).")
	}
	return strings.TrimSpace(b.String())
}
