package advisor

import (
	"strings"
	"testing"

	"repro/internal/dwarfs"
	"repro/internal/platform"
)

func sock() *platform.Socket { return platform.NewPurley().Socket(0) }

func analyze(t *testing.T, app string) Advice {
	t.Helper()
	e, err := dwarfs.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Analyze(e.New(), sock(), 48)
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

func TestClassifyTier(t *testing.T) {
	cases := map[float64]Tier{1.01: Insensitive, 1.27: Insensitive, 2.99: Scaled, 4.94: Scaled, 8.94: Bottlenecked, 14.92: Bottlenecked}
	for slow, want := range cases {
		if got := ClassifyTier(slow); got != want {
			t.Errorf("ClassifyTier(%v) = %v, want %v", slow, got, want)
		}
	}
}

func TestTierString(t *testing.T) {
	if Insensitive.String() != "insensitive" || Scaled.String() != "scaled" || Bottlenecked.String() != "bottlenecked" {
		t.Error("tier names wrong")
	}
}

// Insight I: HACC's advice is a safe direct port.
func TestInsightIHACC(t *testing.T) {
	adv := analyze(t, "HACC")
	if adv.Tier != Insensitive {
		t.Errorf("HACC tier = %v", adv.Tier)
	}
	if !strings.Contains(adv.Summary, "Direct port") {
		t.Errorf("summary: %s", adv.Summary)
	}
	for _, r := range adv.Risks {
		if r.Susceptible {
			t.Errorf("HACC phase %s flagged susceptible", r.Phase)
		}
	}
}

// Insight III: FFT's transpose phase is flagged as write-throttling
// susceptible and the app lands in the bottlenecked tier.
func TestInsightIIIFFT(t *testing.T) {
	adv := analyze(t, "FFT")
	if adv.Tier != Bottlenecked {
		t.Errorf("FFT tier = %v", adv.Tier)
	}
	found := false
	for _, r := range adv.Risks {
		if r.Phase == "transpose" {
			if !r.Susceptible {
				t.Error("transpose phase should be susceptible")
			}
			if r.ReadWriteRatio > 4 {
				t.Errorf("transpose R/W ratio = %v, want low", r.ReadWriteRatio)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("transpose phase missing from risks")
	}
	if !strings.Contains(adv.Summary, "Write throttling") {
		t.Errorf("summary: %s", adv.Summary)
	}
}

// Insight IV: ScaLAPACK gets a write-aware placement recommendation.
func TestInsightIVScaLAPACK(t *testing.T) {
	adv := analyze(t, "ScaLAPACK")
	if !adv.RecommendPlacement {
		t.Errorf("ScaLAPACK should recommend placement: %+v", adv)
	}
	if !strings.Contains(adv.Summary, "Write-aware placement") {
		t.Errorf("summary: %s", adv.Summary)
	}
}

// Insight II: SuperLU (sparse) is recommended for cached-NVM large
// problems.
func TestInsightIISuperLU(t *testing.T) {
	adv := analyze(t, "SuperLU")
	if !adv.RecommendCachedForLargeProblems {
		t.Errorf("SuperLU should recommend cached-NVM for large problems: %+v", adv)
	}
}

// Laghos stays below the threshold in every phase (the Fig 5 contrast).
func TestLaghosBelowThreshold(t *testing.T) {
	adv := analyze(t, "Laghos")
	for _, r := range adv.Risks {
		if r.Susceptible {
			t.Errorf("Laghos phase %s flagged susceptible", r.Phase)
		}
		if r.WriteBW > r.Threshold {
			t.Errorf("phase %s write %v above threshold %v", r.Phase, r.WriteBW, r.Threshold)
		}
	}
}

// All eight applications produce tier classifications matching Table III.
func TestAllAppsClassified(t *testing.T) {
	want := map[string]Tier{
		"HACC": Insensitive, "Laghos": Insensitive,
		"ScaLAPACK": Scaled, "XSBench": Scaled, "Hypre": Scaled, "SuperLU": Scaled,
		"BoxLib": Bottlenecked, "FFT": Bottlenecked,
	}
	for app, tier := range want {
		adv := analyze(t, app)
		if adv.Tier != tier {
			t.Errorf("%s tier = %v, want %v", app, adv.Tier, tier)
		}
		if adv.Summary == "" {
			t.Errorf("%s has no summary", app)
		}
	}
}

func TestAnalyzeValidates(t *testing.T) {
	e, _ := dwarfs.ByName("HACC")
	w := e.New()
	w.Phases = nil
	if _, err := Analyze(w, sock(), 48); err == nil {
		t.Error("invalid workload should fail analysis")
	}
}
