// Package scenario is the declarative sweep layer above the evaluation
// engine: a Spec names the applications (or custom workload builders),
// memory modes, thread counts and footprint scales to sweep, and expands
// into the engine's (workload, mode, threads) job list in a fixed
// deterministic order. Experiments declare their sweeps as Specs and
// submit them to the engine instead of looping inline, and named presets
// (see presets.go) open arbitrary sweeps — including non-paper ones like
// the full-cartesian stress sweep — to cmd/nvmbench and the public API.
//
// Specs are also files: the JSON schema in specfile.go round-trips every
// serializable Spec (LoadSpec / LoadDir / Encode), the presets ship as
// specs/*.json at the repository root, and the sized/composite stanzas
// declare derived workloads — resized registry applications and fused
// multi-application pipelines — without writing Go.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/dwarfs"
	"repro/internal/engine"
	"repro/internal/memsys"
	"repro/internal/units"
	"repro/internal/workload"
)

// Custom couples a label with a workload builder, for sweeps over
// non-registry inputs (dataset sweeps, sized problems). Custom entries
// are Go closures and therefore the one workload source that cannot
// round-trip through a spec file; the serializable equivalents are
// Workloads, Sized and Composite.
type Custom struct {
	Label string
	New   func() *workload.Workload
}

// Sized declares a registry application on a proportionally resized
// problem — the file-level form of Scaled(app, Scale). It is a workload
// source of its own (unlike the Scales axis, which rescales every
// source), so one spec can sweep, say, the paper-input XSBench next to a
// 4x one.
type Sized struct {
	// App names the dwarf-registry application to resize.
	App string
	// Scale multiplies the footprint, per-phase working sets and baseline
	// time.
	Scale float64
	// Label names the sweep rows; empty defaults to "App-xScale".
	Label string
}

// Part is one member application of a Composite workload.
type Part struct {
	// App names the dwarf-registry application.
	App string
	// Weight is the part's share of execution time; weights are
	// normalized over the composite.
	Weight float64
}

// Composite declares a fused multi-application workload: the parts'
// phases interleave on one timeline with their time shares scaled by the
// normalized weights, their footprints coexist in memory, and the
// scaling/amplification knobs blend weight-proportionally. This models
// co-scheduled or tightly coupled applications (a solver feeding an
// analysis stage) — a sweep shape the paper never ran but the spec files
// open up.
type Composite struct {
	Label string
	Parts []Part
}

// Spec declares a sweep. Zero-valued axes take paper defaults: all eight
// registry applications, the three paper-wide modes, 48 threads, scale 1.
//
// A Spec is data: it marshals to and from the JSON schema in specfile.go
// (see LoadSpec), except for the Custom field, whose builders are Go
// closures. The workload sources — Apps, Custom, Workloads, Sized,
// Composite — are additive; when any of them is set, Apps contributes
// only the applications it explicitly names.
type Spec struct {
	Name        string
	Description string

	// Apps lists dwarf-registry applications.
	Apps []string
	// Custom lists explicit workload builders (Go code only; a spec
	// carrying Custom entries cannot be marshaled to a file).
	Custom []Custom
	// Workloads lists full inline workload descriptors (the
	// internal/workload JSON schema in spec files).
	Workloads []*workload.Workload
	// Sized lists resized registry applications.
	Sized []Sized
	// Composite lists fused multi-application workloads.
	Composite []Composite
	// Modes lists the memory configurations to sweep.
	Modes []memsys.Mode
	// Threads lists the concurrency levels to sweep.
	Threads []int
	// Scales lists footprint multipliers: each scales the workload's
	// footprint, per-phase working sets and baseline time linearly,
	// modelling the same code on a proportionally larger (or smaller)
	// problem — the axis behind the capacity-pressure sweeps.
	Scales []float64
	// Plan, when non-nil, configures the adaptive sweep planner
	// (internal/planner): the sweep is resolved from a seeded,
	// model-predicted subset of real evaluations instead of
	// exhaustively. Nil means the classic exhaustive sweep.
	Plan *Plan
}

// Meta labels one expanded evaluation point.
type Meta struct {
	App     string
	Mode    memsys.Mode
	Threads int
	Scale   float64
}

// Outcome couples an evaluation point with its result.
type Outcome struct {
	Meta
	Result workload.Result
}

// customSources counts the non-Apps workload sources.
func (s Spec) customSources() int {
	return len(s.Custom) + len(s.Workloads) + len(s.Sized) + len(s.Composite)
}

func (s Spec) apps() []string {
	if s.customSources() > 0 {
		// Explicit sources present: Apps contributes only what it names.
		return s.Apps
	}
	if len(s.Apps) > 0 {
		return s.Apps
	}
	return dwarfs.Names()
}

func (s Spec) modes() []memsys.Mode {
	if len(s.Modes) > 0 {
		return s.Modes
	}
	return memsys.Modes()
}

func (s Spec) threads() []int {
	if len(s.Threads) > 0 {
		return s.Threads
	}
	return []int{48}
}

func (s Spec) scales() []float64 {
	if len(s.Scales) > 0 {
		return s.Scales
	}
	return []float64{1}
}

// Size returns the number of evaluation points the spec expands to.
func (s Spec) Size() int {
	napps := len(s.apps()) + s.customSources()
	return napps * len(s.modes()) * len(s.threads()) * len(s.scales())
}

// Validate checks the spec against the registry and the thread limits.
func (s Spec) Validate() error {
	for _, app := range s.Apps {
		if _, err := dwarfs.ByName(app); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	for _, c := range s.Custom {
		if c.New == nil {
			return fmt.Errorf("scenario %s: custom workload %q has no builder", s.Name, c.Label)
		}
	}
	for i, w := range s.Workloads {
		if w == nil {
			return fmt.Errorf("scenario %s: workloads[%d] is null", s.Name, i)
		}
		if err := w.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	for _, sz := range s.Sized {
		if _, err := dwarfs.ByName(sz.App); err != nil {
			return fmt.Errorf("scenario %s: sized: %w", s.Name, err)
		}
		if sz.Scale <= 0 {
			return fmt.Errorf("scenario %s: sized %q: non-positive scale %v", s.Name, sz.App, sz.Scale)
		}
	}
	for _, c := range s.Composite {
		if c.Label == "" {
			return fmt.Errorf("scenario %s: composite with empty label", s.Name)
		}
		if len(c.Parts) == 0 {
			return fmt.Errorf("scenario %s: composite %q has no parts", s.Name, c.Label)
		}
		for _, p := range c.Parts {
			if _, err := dwarfs.ByName(p.App); err != nil {
				return fmt.Errorf("scenario %s: composite %q: %w", s.Name, c.Label, err)
			}
			if p.Weight <= 0 {
				return fmt.Errorf("scenario %s: composite %q: non-positive weight %v for %s",
					s.Name, c.Label, p.Weight, p.App)
			}
		}
	}
	for _, mode := range s.modes() {
		if mode == memsys.Placed {
			return fmt.Errorf("scenario %s: Placed mode needs a per-structure plan; use internal/placement", s.Name)
		}
	}
	for _, th := range s.threads() {
		if th < 1 || th > workload.MaxThreads {
			return fmt.Errorf("scenario %s: threads %d out of [1,%d]", s.Name, th, workload.MaxThreads)
		}
	}
	for _, sc := range s.scales() {
		if sc <= 0 {
			return fmt.Errorf("scenario %s: non-positive scale %v", s.Name, sc)
		}
	}
	if s.Plan != nil {
		if err := s.Plan.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Size() == 0 {
		return fmt.Errorf("scenario %s: empty sweep", s.Name)
	}
	// The sources are additive, so two of them carrying one label would
	// render indistinguishable rows and collide in Index lookups.
	if bs, err := s.builders(); err == nil {
		seen := map[string]bool{}
		for _, b := range bs {
			if seen[b.Label] {
				return fmt.Errorf("scenario %s: duplicate workload label %q across sources", s.Name, b.Label)
			}
			seen[b.Label] = true
		}
	}
	return nil
}

// builders resolves the sweep's workload constructors in canonical
// source order: registry apps, Custom, inline Workloads, Sized,
// Composite.
func (s Spec) builders() ([]Custom, error) {
	var out []Custom
	for _, app := range s.apps() {
		e, err := dwarfs.ByName(app)
		if err != nil {
			return nil, err
		}
		out = append(out, Custom{Label: e.Name, New: e.New})
	}
	out = append(out, s.Custom...)
	for _, w := range s.Workloads {
		w := w
		out = append(out, Custom{Label: w.Name, New: func() *workload.Workload { return w }})
	}
	for _, sz := range s.Sized {
		sz := sz
		e, err := dwarfs.ByName(sz.App)
		if err != nil {
			return nil, err
		}
		label := sz.Label
		if label == "" {
			label = fmt.Sprintf("%s-x%g", e.Name, sz.Scale)
		}
		out = append(out, Custom{Label: label, New: func() *workload.Workload {
			w := Scaled(e.New(), sz.Scale)
			w.Name = label
			return w
		}})
	}
	for _, c := range s.Composite {
		c := c
		out = append(out, Custom{Label: c.Label, New: func() *workload.Workload {
			w, err := Fuse(c)
			if err != nil {
				// Validate catches every error Fuse can produce; a nil
				// here surfaces as Expand's nil-workload error.
				return nil
			}
			return w
		}})
	}
	return out, nil
}

// EachPoint streams the sweep's expansion in the spec's canonical
// order (app, scale, mode, threads — innermost last) without
// materializing it: fn is invoked once per evaluation point with the
// point's expansion index, meta label and engine job, and enumeration
// stops early when fn returns false. Workload descriptors are shared
// across the modes×threads block of one (source, scale) pair, exactly
// as Expand shares them, so memory while streaming is O(1) in point
// count — the seam the fleet coordinator's windowed dispatch carves
// chunks from at 100k-point scale.
func (s Spec) EachPoint(fn func(i int, m Meta, job engine.Job) bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	builders, err := s.builders()
	if err != nil {
		return err
	}
	i := 0
	for _, b := range builders {
		base := b.New()
		if base == nil {
			return fmt.Errorf("scenario %s: builder for %q returned a nil workload", s.Name, b.Label)
		}
		for _, sc := range s.scales() {
			w := Scaled(base, sc)
			for _, mode := range s.modes() {
				for _, th := range s.threads() {
					if !fn(i, Meta{App: b.Label, Mode: mode, Threads: th, Scale: sc},
						engine.Job{Workload: w, Mode: mode, Threads: th, Origin: s.Name}) {
						return nil
					}
					i++
				}
			}
		}
	}
	return nil
}

// Expand materializes the sweep: the meta labels and engine jobs, index
// aligned, in the spec's canonical order (app, scale, mode, threads —
// innermost last). Expand is EachPoint collected into slices; the two
// enumerations are index-identical by construction.
func (s Spec) Expand() ([]Meta, []engine.Job, error) {
	metas := make([]Meta, 0, s.Size())
	jobs := make([]engine.Job, 0, s.Size())
	err := s.EachPoint(func(_ int, m Meta, job engine.Job) bool {
		metas = append(metas, m)
		jobs = append(jobs, job)
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	return metas, jobs, nil
}

// Run expands the spec and evaluates it on the engine, returning the
// outcomes in the spec's canonical order.
func (s Spec) Run(e *engine.Engine) ([]Outcome, error) {
	metas, jobs, err := s.Expand()
	if err != nil {
		return nil, err
	}
	results, err := e.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]Outcome, len(metas))
	for i := range metas {
		out[i] = Outcome{Meta: metas[i], Result: results[i]}
	}
	return out, nil
}

// Index is a point-addressed view of a sweep's outcomes, for experiment
// code that assembles rows/series out of submission order.
type Index map[Meta]workload.Result

// NewIndex builds the lookup from a sweep's outcomes.
func NewIndex(outs []Outcome) Index {
	ix := make(Index, len(outs))
	for _, o := range outs {
		ix[o.Meta] = o.Result
	}
	return ix
}

// Get returns the unscaled (Scale 1) result for an evaluation point. A
// missing point is a programming error — the spec did not cover the
// lookup — so Get panics rather than returning a zero Result that would
// silently render as all-zero rows.
func (ix Index) Get(app string, mode memsys.Mode, threads int) workload.Result {
	res, ok := ix[Meta{App: app, Mode: mode, Threads: threads, Scale: 1}]
	if !ok {
		panic(fmt.Sprintf("scenario: no outcome for %s on %s @ %d threads", app, mode, threads))
	}
	return res
}

// Scaled returns the workload scaled to a proportionally larger or
// smaller problem: footprint, per-phase working sets and baseline time
// grow linearly with the factor, while bandwidth demands (a property of
// the code, not the input size) are unchanged. Scale 1 returns the
// workload itself.
func Scaled(w *workload.Workload, scale float64) *workload.Workload {
	if scale == 1 {
		return w
	}
	cp := *w
	cp.Input = fmt.Sprintf("%s [x%g footprint]", w.Input, scale)
	cp.Footprint = units.Bytes(float64(w.Footprint) * scale)
	cp.BaselineTime = units.Duration(float64(w.BaselineTime) * scale)
	cp.Phases = append([]memsys.Phase(nil), w.Phases...)
	for i := range cp.Phases {
		cp.Phases[i].WorkingSet = units.Bytes(float64(cp.Phases[i].WorkingSet) * scale)
	}
	return &cp
}

// Table renders outcomes as a fixed-width sweep report.
func Table(outcomes []Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %7s %6s %10s %12s %10s %10s %10s  %s\n",
		"App", "Mode", "Threads", "Scale", "Time(s)", "FoM", "Slowdown", "Rd(GB/s)", "Wr(GB/s)", "Bound")
	for _, o := range outcomes {
		// Report the binding resource of the most dilated phase.
		bound, worst := "", 0.0
		for _, po := range o.Result.Phases {
			if bound == "" || po.Epoch.Mult > worst {
				bound, worst = string(po.Epoch.BoundBy), po.Epoch.Mult
			}
		}
		fmt.Fprintf(&b, "%-12s %-14s %7d %6.2g %10.3f %12.4g %9.2fx %10.1f %10.1f  %s\n",
			o.App, o.Mode, o.Threads, o.Scale, o.Result.Time.Seconds(), o.Result.FoMValue,
			o.Result.Slowdown, o.Result.AvgRead().GBpsValue(), o.Result.AvgWrite().GBpsValue(), bound)
	}
	return b.String()
}
