package scenario

import "fmt"

// Seed strategies for the adaptive sweep planner (internal/planner): how
// the planner picks the subset of a sweep it evaluates for real before
// training the prediction model on it.
const (
	// SeedEdges evaluates the corners and midpoints of each regression
	// group's threads x scales sub-grid — the cheapest seed that still
	// brackets the concurrency and data-size axes (the default).
	SeedEdges = "edges"
	// SeedStride evaluates every other point of each group's sub-grid.
	SeedStride = "stride"
	// SeedFull evaluates every point — the planner degenerates to the
	// exhaustive sweep (useful as a control). Unless BudgetFrac is set
	// explicitly, a full seed defaults the budget to the whole space.
	SeedFull = "full"
)

// ObjectiveTime minimizes modelled run time (the only objective
// currently defined; the frontier's second axis is always DRAM use).
const ObjectiveTime = "time"

// Plan configures the adaptive sweep planner for a spec: instead of
// evaluating every expanded point, the planner evaluates a seed subset,
// trains the Section V-A-style regression on it, predicts the remaining
// points, and spends the rest of its evaluation budget where the model
// is least certain and on verifying the Pareto frontier. A Plan is pure
// data — it rides along in the spec file as the optional "plan" block.
//
// Zero values select the defaults (see Defaults); a nil *Plan on a Spec
// means "no plan": the sweep is evaluated exhaustively as before.
type Plan struct {
	// Seed names the seed strategy: SeedEdges (default), SeedStride or
	// SeedFull.
	Seed string
	// BudgetFrac caps real evaluations at this fraction of the expanded
	// point count (default 0.5). The planner submits at most
	// floor(BudgetFrac * points) jobs to the engine, floored at one
	// point per regression group — nothing can be predicted from a
	// group with no real evaluation.
	BudgetFrac float64
	// Threshold is the relative prediction-disagreement level above
	// which a predicted point is submitted for real evaluation
	// (default 0.05): disagreement is the leave-one-out ensemble spread
	// divided by the mean prediction.
	Threshold float64
	// Objective names the quantity the frontier minimizes alongside DRAM
	// use; only ObjectiveTime is defined.
	Objective string
	// MaxRounds bounds the refine/verify iterations after the seed round
	// (default 8).
	MaxRounds int
}

// Defaults returns the plan with zero-valued knobs replaced by their
// defaults. It does not validate; see Validate.
func (p Plan) Defaults() Plan {
	if p.Seed == "" {
		p.Seed = SeedEdges
	}
	if p.BudgetFrac == 0 {
		// A full seed means "the exhaustive control": without an
		// explicit budget it must not be silently truncated at the
		// adaptive default.
		if p.Seed == SeedFull {
			p.BudgetFrac = 1
		} else {
			p.BudgetFrac = 0.5
		}
	}
	if p.Threshold == 0 {
		p.Threshold = 0.05
	}
	if p.Objective == "" {
		p.Objective = ObjectiveTime
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = 8
	}
	return p
}

// Validate checks the plan's knobs (zero values are allowed — they mean
// "default").
func (p Plan) Validate() error {
	switch p.Seed {
	case "", SeedEdges, SeedStride, SeedFull:
	default:
		return fmt.Errorf("plan: unknown seed strategy %q (have %s, %s, %s)",
			p.Seed, SeedEdges, SeedStride, SeedFull)
	}
	if p.BudgetFrac < 0 || p.BudgetFrac > 1 {
		return fmt.Errorf("plan: budget fraction %v out of [0,1]", p.BudgetFrac)
	}
	if p.Threshold < 0 {
		return fmt.Errorf("plan: negative disagreement threshold %v", p.Threshold)
	}
	switch p.Objective {
	case "", ObjectiveTime:
	default:
		return fmt.Errorf("plan: unknown objective %q (have %s)", p.Objective, ObjectiveTime)
	}
	if p.MaxRounds < 0 {
		return fmt.Errorf("plan: negative max rounds %d", p.MaxRounds)
	}
	return nil
}
