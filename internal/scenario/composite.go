package scenario

import (
	"fmt"
	"strings"

	"repro/internal/dwarfs"
	"repro/internal/units"
	"repro/internal/workload"
)

// Fuse materializes a Composite declaration into one workload: the
// parts' phases share a timeline with their time shares scaled by the
// normalized weights, footprints coexist in memory (they sum), and the
// concurrency-scaling and amplification knobs blend weight-
// proportionally. Phase names gain an "App/" prefix so per-phase
// scaling survives the merge, and the figure of merit becomes run time
// (the parts' rate metrics are not commensurable).
func Fuse(c Composite) (*workload.Workload, error) {
	if c.Label == "" {
		return nil, fmt.Errorf("scenario: composite with empty label")
	}
	if len(c.Parts) == 0 {
		return nil, fmt.Errorf("scenario: composite %q has no parts", c.Label)
	}
	var totalW float64
	for _, p := range c.Parts {
		if p.Weight <= 0 {
			return nil, fmt.Errorf("scenario: composite %q: non-positive weight %v for %s",
				c.Label, p.Weight, p.App)
		}
		totalW += p.Weight
	}

	out := &workload.Workload{
		Name:          c.Label,
		Dwarf:         "Composite",
		FoM:           workload.FoM{Name: "Time", Unit: "s"},
		PhaseScalings: map[string]workload.Scaling{},
	}
	var inputs []string
	var baseline, footprint, parallel, htEff, htWrite, thRead, work float64
	// Anchor the merged model at the dominant part's profiling
	// concurrency (ties break to the first part).
	var anchorW float64
	for _, p := range c.Parts {
		e, err := dwarfs.ByName(p.App)
		if err != nil {
			return nil, fmt.Errorf("scenario: composite %q: %w", c.Label, err)
		}
		pw := e.New()
		w := p.Weight / totalW
		inputs = append(inputs, fmt.Sprintf("%s (%.0f%%)", e.Name, 100*w))
		baseline += w * float64(pw.BaselineTime)
		footprint += float64(pw.Footprint)
		parallel += w * pw.Scaling.ParallelFrac
		htEff += w * pw.Scaling.HTEfficiency
		htWrite += w * pw.HTWriteAmplification
		thRead += w * pw.ThreadReadAmplification
		work += w * pw.Work
		if w > anchorW {
			anchorW, out.BaseThreads = w, pw.BaseThreads
		}
		out.Seed = out.Seed*1099511628211 + pw.Seed + 1
		for _, ph := range pw.Phases {
			merged := ph
			merged.Name = e.Name + "/" + ph.Name
			merged.Share = ph.Share * w
			out.Phases = append(out.Phases, merged)
			// Keep each part scaling as its own applications do.
			sc := pw.Scaling
			if ps, ok := pw.PhaseScalings[ph.Name]; ok {
				sc = ps
			}
			out.PhaseScalings[merged.Name] = sc
		}
	}
	out.Input = "composite: " + strings.Join(inputs, " + ")
	out.BaselineTime = units.Duration(baseline)
	out.Footprint = units.Bytes(footprint)
	out.Scaling = workload.Scaling{ParallelFrac: parallel, HTEfficiency: htEff}
	out.HTWriteAmplification = htWrite
	out.ThreadReadAmplification = thRead
	out.Work = work
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: composite %q: %w", c.Label, err)
	}
	return out, nil
}
