package scenario

import (
	"fmt"
	"strings"

	"repro/internal/memsys"
)

// Presets returns the named scenarios: one per paper sweep (the
// experiment functions in internal/experiments declare these shapes when
// regenerating the figures) followed by sweeps beyond the paper's
// evaluation — the full-cartesian stress sweep, the capacity-pressure
// sweep and the hyperthread-oversubscription ladder.
func Presets() []Spec {
	return []Spec{
		{
			Name:        "paper-overview",
			Description: "Fig 2 shape: all eight applications on the three configurations at full concurrency",
		},
		{
			Name:        "uncached-characterization",
			Description: "Table III shape: all applications on uncached NVM at full concurrency",
			Modes:       []memsys.Mode{memsys.UncachedNVM},
		},
		{
			Name:        "hypre-trace",
			Description: "Fig 4 shape: Hypre on DRAM-only versus cached NVM",
			Apps:        []string{"Hypre"},
			Modes:       []memsys.Mode{memsys.DRAMOnly, memsys.CachedNVM},
		},
		{
			Name:        "write-throttling",
			Description: "Fig 5 shape: Laghos and SuperLU on DRAM-only versus uncached NVM",
			Apps:        []string{"Laghos", "SuperLU"},
			Modes:       []memsys.Mode{memsys.DRAMOnly, memsys.UncachedNVM},
		},
		{
			Name:        "contention",
			Description: "Fig 6 shape: all applications and modes at half versus full concurrency",
			Threads:     []int{24, 48},
		},
		{
			Name:        "ft-divergence",
			Description: "Fig 7 shape: FT on uncached NVM at 8 versus 24 threads",
			Apps:        []string{"FFT"},
			Modes:       []memsys.Mode{memsys.UncachedNVM},
			Threads:     []int{8, 24},
		},
		{
			Name:        "scalapack-phases",
			Description: "Fig 8 shape: ScaLAPACK on uncached NVM at 16 versus 36 threads",
			Apps:        []string{"ScaLAPACK"},
			Modes:       []memsys.Mode{memsys.UncachedNVM},
			Threads:     []int{16, 36},
		},
		{
			Name:        "beyond-dram",
			Description: "Fig 3 shape: BoxLib and Hypre on cached versus uncached NVM as footprints grow past DRAM",
			Apps:        []string{"BoxLib", "Hypre"},
			Modes:       []memsys.Mode{memsys.CachedNVM, memsys.UncachedNVM},
			Scales:      []float64{0.5, 1, 2, 4},
		},
		{
			Name:        "prediction-concurrency",
			Description: "Fig 10 shape: XSBench and FT on cached NVM across the concurrency sweep",
			Apps:        []string{"XSBench", "FFT"},
			Modes:       []memsys.Mode{memsys.CachedNVM},
			Threads:     []int{8, 16, 24, 32, 36, 40, 48},
		},
		{
			Name:        "prediction-datasize",
			Description: "Fig 11 shape: XSBench and ScaLAPACK on cached NVM across growing data sizes",
			Apps:        []string{"XSBench", "ScaLAPACK"},
			Modes:       []memsys.Mode{memsys.CachedNVM},
			Threads:     []int{36},
			Scales:      []float64{1, 2, 4, 8},
		},
		{
			Name: "full-cartesian",
			Description: "stress sweep beyond the paper: all applications x all modes x the full " +
				"thread ladder (216 evaluation points)",
			Threads: []int{1, 2, 4, 8, 16, 24, 32, 40, 48},
		},
		{
			Name: "capacity-pressure",
			Description: "capacity sweep beyond the paper: every application from half to eight times " +
				"its paper footprint on both NVM configurations",
			Modes:  []memsys.Mode{memsys.CachedNVM, memsys.UncachedNVM},
			Scales: []float64{0.5, 1, 2, 4, 8},
		},
		{
			Name: "ht-oversubscription",
			Description: "hyperthreading ladder beyond the paper: all applications and modes from the " +
				"physical-core count up to full SMT",
			Threads: []int{24, 28, 32, 36, 40, 44, 48},
		},
	}
}

// Names lists the preset names in registry order.
func Names() []string {
	var out []string
	for _, s := range Presets() {
		out = append(out, s.Name)
	}
	return out
}

// ByName returns the named preset.
func ByName(name string) (Spec, error) {
	for _, s := range Presets() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown preset %q (have %s)", name, strings.Join(Names(), ", "))
}
