package scenario

import (
	"strings"
	"testing"

	"repro/internal/dwarfs"
	"repro/internal/engine"
	"repro/internal/memsys"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

func eng(workers int) *engine.Engine {
	return engine.New(platform.NewPurley().Socket(0), workers)
}

func TestPresetsValidateAndExpand(t *testing.T) {
	seen := map[string]bool{}
	for _, sp := range Presets() {
		if seen[sp.Name] {
			t.Errorf("duplicate preset name %q", sp.Name)
		}
		seen[sp.Name] = true
		if sp.Description == "" {
			t.Errorf("%s: empty description", sp.Name)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
		metas, jobs, err := sp.Expand()
		if err != nil {
			t.Errorf("%s: %v", sp.Name, err)
			continue
		}
		if len(metas) != sp.Size() || len(jobs) != sp.Size() {
			t.Errorf("%s: expanded %d/%d points, Size() = %d", sp.Name, len(metas), len(jobs), sp.Size())
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("FULL-CARTESIAN"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown preset should fail")
	}
	if len(Names()) != len(Presets()) {
		t.Error("Names/Presets mismatch")
	}
}

func TestExpandCanonicalOrder(t *testing.T) {
	sp := Spec{
		Name:    "order",
		Apps:    []string{"HACC", "FFT"},
		Modes:   []memsys.Mode{memsys.DRAMOnly, memsys.UncachedNVM},
		Threads: []int{8, 48},
	}
	metas, _, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []Meta{
		{"HACC", memsys.DRAMOnly, 8, 1}, {"HACC", memsys.DRAMOnly, 48, 1},
		{"HACC", memsys.UncachedNVM, 8, 1}, {"HACC", memsys.UncachedNVM, 48, 1},
		{"FFT", memsys.DRAMOnly, 8, 1}, {"FFT", memsys.DRAMOnly, 48, 1},
		{"FFT", memsys.UncachedNVM, 8, 1}, {"FFT", memsys.UncachedNVM, 48, 1},
	}
	if len(metas) != len(want) {
		t.Fatalf("got %d metas", len(metas))
	}
	for i := range want {
		if metas[i] != want[i] {
			t.Errorf("meta %d = %+v, want %+v", i, metas[i], want[i])
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Spec{
		{Name: "bad-app", Apps: []string{"NoSuchApp"}},
		{Name: "bad-threads", Threads: []int{0}},
		{Name: "bad-threads-high", Threads: []int{workload.MaxThreads + 1}},
		{Name: "bad-scale", Scales: []float64{-1}},
		{Name: "placed", Modes: []memsys.Mode{memsys.Placed}},
		{Name: "nil-builder", Custom: []Custom{{Label: "x"}}},
	}
	for _, sp := range cases {
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: expected validation error", sp.Name)
		}
	}
}

func TestIndexGet(t *testing.T) {
	sp := Spec{Name: "idx", Apps: []string{"HACC"}, Modes: []memsys.Mode{memsys.DRAMOnly}, Threads: []int{8}}
	outs, err := sp.Run(eng(1))
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(outs)
	if res := ix.Get("HACC", memsys.DRAMOnly, 8); res.Time <= 0 {
		t.Error("indexed result empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("missing point should panic, not yield a zero Result")
		}
	}()
	ix.Get("HACC", memsys.DRAMOnly, 48)
}

// A builder that passes Validate but returns nil at expansion time
// surfaces as an error, not a panic downstream.
func TestExpandRejectsNilBuiltWorkload(t *testing.T) {
	sp := Spec{
		Name:   "nil-built",
		Custom: []Custom{{Label: "x", New: func() *workload.Workload { return nil }}},
	}
	if _, _, err := sp.Expand(); err == nil {
		t.Error("nil built workload should fail expansion")
	}
	sp.Scales = []float64{2}
	if _, _, err := sp.Expand(); err == nil {
		t.Error("nil built workload should fail expansion with scales")
	}
}

func TestScaled(t *testing.T) {
	e, err := dwarfs.ByName("Hypre")
	if err != nil {
		t.Fatal(err)
	}
	w := e.New()
	if Scaled(w, 1) != w {
		t.Error("scale 1 should return the workload itself")
	}
	origFP, origWS := w.Footprint, w.Phases[0].WorkingSet
	s := Scaled(w, 2)
	if s.Footprint != units.Bytes(2*float64(origFP)) {
		t.Errorf("footprint %v, want doubled %v", s.Footprint, origFP)
	}
	if s.Phases[0].WorkingSet != units.Bytes(2*float64(origWS)) {
		t.Error("working set not scaled")
	}
	if w.Footprint != origFP || w.Phases[0].WorkingSet != origWS {
		t.Error("original workload mutated")
	}
	if s.Fingerprint() == w.Fingerprint() {
		t.Error("scaled workload shares the original's fingerprint")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled workload invalid: %v", err)
	}
}

func TestRunProducesOrderedOutcomes(t *testing.T) {
	sp := Spec{
		Name:    "smoke",
		Apps:    []string{"HACC", "Laghos"},
		Modes:   []memsys.Mode{memsys.UncachedNVM},
		Threads: []int{24, 48},
	}
	outs, err := sp.Run(eng(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != sp.Size() {
		t.Fatalf("got %d outcomes, want %d", len(outs), sp.Size())
	}
	metas, _, _ := sp.Expand()
	for i := range outs {
		if outs[i].Meta != metas[i] {
			t.Errorf("outcome %d meta %+v != %+v", i, outs[i].Meta, metas[i])
		}
		if outs[i].Result.Time <= 0 {
			t.Errorf("outcome %d: non-positive time", i)
		}
	}
}

func TestCapacityPressureGrowsCachedPenalty(t *testing.T) {
	// The point of the capacity-pressure preset: as the footprint scales
	// past DRAM, the cached-NVM hit rate falls and the run slows more
	// than linearly, while uncached scales ~linearly.
	sp := Spec{
		Name:   "pressure",
		Apps:   []string{"Hypre"},
		Modes:  []memsys.Mode{memsys.CachedNVM},
		Scales: []float64{1, 8},
	}
	outs, err := sp.Run(eng(2))
	if err != nil {
		t.Fatal(err)
	}
	small, large := outs[0].Result, outs[1].Result
	if float64(large.Time) <= 8*float64(small.Time) {
		t.Errorf("8x footprint should cost more than 8x time under cache pressure: %v vs %v",
			large.Time, small.Time)
	}
}

func TestTableRendersAllPoints(t *testing.T) {
	sp := Spec{Name: "tbl", Apps: []string{"FFT"}, Modes: []memsys.Mode{memsys.UncachedNVM}, Threads: []int{8, 48}}
	outs, err := sp.Run(eng(1))
	if err != nil {
		t.Fatal(err)
	}
	s := Table(outs)
	if strings.Count(s, "FFT") != 2 || !strings.Contains(s, "uncached-NVM") {
		t.Errorf("table:\n%s", s)
	}
}
