package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzLoadSpec drives the spec-file decoder with arbitrary bytes: a
// malformed spec must come back as an error, never a panic, and a spec
// that decodes must survive re-encoding (unless it still carries the
// one non-serializable source, which file-loaded specs cannot).
func FuzzLoadSpec(f *testing.F) {
	for _, sp := range Presets() {
		b, err := Encode(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"name": "x", "sized": [{"app": "FFT", "scale": 2}]}`))
	f.Add([]byte(`{"name": "x", "composite": [{"label": "c", "parts": [{"app": "FFT", "weight": 1}]}]}`))
	f.Add([]byte(`{"name": "x", "workloads": [{"name": "w"}]}`))
	f.Add([]byte(`{"name": "x", "modes": ["DRAM", "nope"]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name": "x", "threads": [1e99]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data, "fuzz.json")
		if err != nil {
			return
		}
		if _, err := json.Marshal(sp); err != nil {
			t.Errorf("parsed spec failed to re-marshal: %v", err)
		}
		// A valid spec must also expand without panicking.
		if _, _, err := sp.Expand(); err != nil {
			t.Errorf("parsed spec failed to expand: %v", err)
		}
	})
}
