package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzLoadSpec drives the spec-file decoder with arbitrary bytes: a
// malformed spec must come back as an error, never a panic, and a spec
// that decodes must survive re-encoding (unless it still carries the
// one non-serializable source, which file-loaded specs cannot).
func FuzzLoadSpec(f *testing.F) {
	for _, sp := range Presets() {
		b, err := Encode(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"name": "x", "sized": [{"app": "FFT", "scale": 2}]}`))
	f.Add([]byte(`{"name": "x", "composite": [{"label": "c", "parts": [{"app": "FFT", "weight": 1}]}]}`))
	f.Add([]byte(`{"name": "x", "workloads": [{"name": "w"}]}`))
	f.Add([]byte(`{"name": "x", "modes": ["DRAM", "nope"]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name": "x", "threads": [1e99]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data, "fuzz.json")
		if err != nil {
			return
		}
		if _, err := json.Marshal(sp); err != nil {
			t.Errorf("parsed spec failed to re-marshal: %v", err)
		}
		// A valid spec must also expand without panicking.
		if _, _, err := sp.Expand(); err != nil {
			t.Errorf("parsed spec failed to expand: %v", err)
		}
	})
}

// FuzzPlanSpec drives the "plan" block through the decoder: a spec with
// a malformed plan must error, never panic, and a plan that decodes
// must validate, default to sane knobs and survive re-encoding
// byte-identically.
func FuzzPlanSpec(f *testing.F) {
	for _, sp := range Presets() {
		sp.Plan = &Plan{}
		b, err := Encode(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"name": "x", "plan": {"seed": "edges", "budget_frac": 0.5, "threshold": 0.05, "objective": "time", "max_rounds": 8}}`))
	f.Add([]byte(`{"name": "x", "plan": {"seed": "stride"}}`))
	f.Add([]byte(`{"name": "x", "plan": {"seed": "full", "budget_frac": 1}}`))
	f.Add([]byte(`{"name": "x", "plan": {"budget_frac": 2}}`))
	f.Add([]byte(`{"name": "x", "plan": {"threshold": -0.1}}`))
	f.Add([]byte(`{"name": "x", "plan": {"max_rounds": 1e99}}`))
	f.Add([]byte(`{"name": "x", "plan": null}`))
	f.Add([]byte(`{"name": "x", "plan": {"sedd": "typo"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data, "fuzz.json")
		if err != nil {
			return
		}
		if sp.Plan != nil {
			if err := sp.Plan.Validate(); err != nil {
				t.Errorf("ParseSpec accepted an invalid plan: %v", err)
			}
			d := sp.Plan.Defaults()
			if d.Seed == "" || d.BudgetFrac <= 0 || d.BudgetFrac > 1 ||
				d.Threshold < 0 || d.Objective == "" || d.MaxRounds < 1 {
				t.Errorf("defaults left a zero knob: %+v", d)
			}
		}
		b, err := Encode(sp)
		if err != nil {
			t.Fatalf("parsed spec failed to re-encode: %v", err)
		}
		back, err := ParseSpec(b, "reencoded.json")
		if err != nil {
			t.Fatalf("re-encoded spec failed to parse: %v", err)
		}
		if (back.Plan == nil) != (sp.Plan == nil) {
			t.Error("plan presence did not round-trip")
		} else if sp.Plan != nil && *back.Plan != *sp.Plan {
			t.Errorf("plan drifted through the codec: %+v != %+v", back.Plan, sp.Plan)
		}
	})
}
