package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dwarfs"
	"repro/internal/memsys"
	"repro/internal/workload"
)

// fileSpec is a representative user-authored spec exercising every
// serializable workload source.
func fileSpec(t *testing.T) Spec {
	t.Helper()
	w := dwarfs.All()[0].New()
	return Spec{
		Name:        "user-sweep",
		Description: "inline + sized + composite sources",
		Apps:        []string{"Hypre"},
		Workloads:   []*workload.Workload{w},
		Sized:       []Sized{{App: "XSBench", Scale: 2, Label: "XSBench-XXL"}},
		Composite:   []Composite{{Label: "hypre+fft", Parts: []Part{{App: "Hypre", Weight: 3}, {App: "FFT", Weight: 1}}}},
		Modes:       []memsys.Mode{memsys.DRAMOnly, memsys.UncachedNVM},
		Threads:     []int{8, 48},
		Scales:      []float64{1, 2},
	}
}

func TestPresetsRoundTripJSON(t *testing.T) {
	for _, sp := range Presets() {
		b, err := Encode(sp)
		if err != nil {
			t.Fatalf("%s: encode: %v", sp.Name, err)
		}
		got, err := ParseSpec(b, sp.Name+".json")
		if err != nil {
			t.Fatalf("%s: parse: %v", sp.Name, err)
		}
		if !reflect.DeepEqual(got, sp) {
			t.Errorf("%s: round trip drifted:\nfile: %+v\nGo:   %+v", sp.Name, got, sp)
		}
	}
}

func TestSpecEncodeIdempotent(t *testing.T) {
	sp := fileSpec(t)
	b1, err := Encode(sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(b1, "mem")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("encode not idempotent:\n%s\nvs\n%s", b1, b2)
	}
}

func TestSpecWithAllSourcesRuns(t *testing.T) {
	sp := fileSpec(t)
	sp.Modes = []memsys.Mode{memsys.UncachedNVM}
	sp.Threads = []int{48}
	sp.Scales = nil
	// 1 app + 1 inline + 1 sized + 1 composite = 4 sources.
	if sp.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", sp.Size())
	}
	outs, err := sp.Run(eng(2))
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(outs))
	for i, o := range outs {
		labels[i] = o.App
		if o.Result.Time <= 0 {
			t.Errorf("%s: non-positive time", o.App)
		}
	}
	want := []string{"Hypre", "HACC", "XSBench-XXL", "hypre+fft"}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("labels = %v, want %v", labels, want)
	}
}

func TestMarshalRejectsCustomBuilders(t *testing.T) {
	sp := Spec{Name: "x", Custom: []Custom{{Label: "c", New: dwarfs.All()[0].New}}}
	if _, err := json.Marshal(sp); err == nil {
		t.Error("Custom builders must not marshal silently")
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range memsys.Modes() {
		got, err := ParseMode(strings.ToUpper(m.String()))
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	// The CLI shorthands (historically private to nvmsim/nvmtrace, now
	// canonical here so the vocabulary cannot drift between surfaces).
	aliases := map[string]memsys.Mode{
		"dram": memsys.DRAMOnly, "DRAM": memsys.DRAMOnly,
		"cached": memsys.CachedNVM, "Memory": memsys.CachedNVM, "cached-nvm": memsys.CachedNVM,
		"uncached": memsys.UncachedNVM, "APPDIRECT": memsys.UncachedNVM, "uncached-NVM": memsys.UncachedNVM,
	}
	for name, want := range aliases {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := ParseMode("optane")
	if err == nil || !strings.Contains(err.Error(), "cached-NVM") {
		t.Errorf("unknown mode error should list valid names, got %v", err)
	}
	// Placed cannot appear in a spec file (it needs a per-structure
	// plan), so ParseMode must neither accept nor advertise it.
	if _, err := ParseMode("write-aware"); err == nil {
		t.Error("ParseMode should reject Placed")
	} else if !strings.Contains(err.Error(), "have DRAM, cached-NVM, uncached-NVM") ||
		strings.Contains(err.Error(), "write-aware (") {
		t.Errorf("unknown-mode error should advertise exactly the paper modes: %v", err)
	}
}

// The optional "plan" block configures the adaptive planner and must
// round-trip with the same strictness as the rest of the schema.
func TestSpecPlanBlockRoundTrip(t *testing.T) {
	src := `{
  "name": "planned",
  "apps": ["XSBench"],
  "threads": [8, 24, 48],
  "plan": {"seed": "stride", "budget_frac": 0.4, "threshold": 0.1, "objective": "time", "max_rounds": 3}
}`
	sp, err := ParseSpec([]byte(src), "plan.json")
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{Seed: SeedStride, BudgetFrac: 0.4, Threshold: 0.1, Objective: ObjectiveTime, MaxRounds: 3}
	if sp.Plan == nil || *sp.Plan != *want {
		t.Fatalf("plan = %+v, want %+v", sp.Plan, want)
	}
	b, err := Encode(sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(b, "reencoded.json")
	if err != nil {
		t.Fatal(err)
	}
	if back.Plan == nil || *back.Plan != *sp.Plan {
		t.Errorf("plan did not survive re-encoding: %+v", back.Plan)
	}

	// Unknown fields inside the block fail loudly, like everywhere else.
	if _, err := ParseSpec([]byte(`{"name": "x", "plan": {"sedd": "edges"}}`), "typo.json"); err == nil ||
		!strings.Contains(err.Error(), "sedd") {
		t.Errorf("typoed plan field should be rejected by name, got %v", err)
	}
	// Bad knob values are caught by Validate.
	for _, bad := range []string{
		`{"name": "x", "plan": {"seed": "psychic"}}`,
		`{"name": "x", "plan": {"budget_frac": 1.5}}`,
		`{"name": "x", "plan": {"threshold": -1}}`,
		`{"name": "x", "plan": {"objective": "vibes"}}`,
		`{"name": "x", "plan": {"max_rounds": -2}}`,
	} {
		if _, err := ParseSpec([]byte(bad), "bad.json"); err == nil {
			t.Errorf("invalid plan %s should fail validation", bad)
		}
	}
	// An empty block is valid: every knob defaults.
	sp, err = ParseSpec([]byte(`{"name": "x", "plan": {}}`), "empty.json")
	if err != nil {
		t.Fatal(err)
	}
	d := sp.Plan.Defaults()
	if d.Seed != SeedEdges || d.BudgetFrac != 0.5 || d.Threshold != 0.05 ||
		d.Objective != ObjectiveTime || d.MaxRounds != 8 {
		t.Errorf("defaults = %+v", d)
	}
	// A full seed without an explicit budget means the exhaustive
	// control — the budget must default to the whole space, not 50%.
	if d := (Plan{Seed: SeedFull}).Defaults(); d.BudgetFrac != 1 {
		t.Errorf("full-seed default budget = %v, want 1", d.BudgetFrac)
	}
	if d := (Plan{Seed: SeedFull, BudgetFrac: 0.3}).Defaults(); d.BudgetFrac != 0.3 {
		t.Errorf("explicit budget overridden: %v", d.BudgetFrac)
	}
}

func TestParseSpecErrorQuality(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"syntax", "{\n  \"name\": \"x\",\n  broken\n}", "bad.json:3:"},
		{"unknown-field", "{\n  \"name\": \"x\",\n  \"thread\": [8]\n}", "bad.json:3:"},
		{"unknown-field-named", "{\"name\": \"x\", \"thread\": [8]}", `unknown field "thread"`},
		{"type", "{\n  \"name\": \"x\",\n  \"threads\": \"8\"\n}", "bad.json:3:"},
		{"bad-mode", `{"name": "x", "modes": ["fast"]}`, `unknown mode "fast"`},
		{"bad-app", `{"name": "x", "apps": ["NoSuchApp"]}`, "unknown application"},
		{"no-name", `{"threads": [8]}`, "no name"},
		{"bad-threads", `{"name": "x", "threads": [0]}`, "threads 0"},
		{"bad-composite", `{"name": "x", "composite": [{"label": "c", "parts": []}]}`, "no parts"},
		{"bad-sized", `{"name": "x", "sized": [{"app": "FFT", "scale": 0}]}`, "non-positive scale"},
		{"nested-unknown-field", `{"name": "x", "workloads": [{"name": "w", "seeed": 42}]}`, `unknown field "seeed"`},
		{"dup-label", `{"name": "x", "apps": ["FFT"], "composite": [{"label": "FFT", "parts": [{"app": "Hypre", "weight": 1}]}]}`, "duplicate workload label"},
	}
	for _, c := range cases {
		_, err := ParseSpec([]byte(c.src), "bad.json")
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestLoadSpecAndDir(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSpecs(dir, Presets()); err != nil {
		t.Fatal(err)
	}
	// One file loads alone.
	sp, err := LoadSpec(filepath.Join(dir, "beyond-dram.json"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ByName("beyond-dram")
	if !reflect.DeepEqual(sp, want) {
		t.Errorf("loaded %+v, want %+v", sp, want)
	}
	// The directory loads in name order and covers every preset.
	specs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(Presets()) {
		t.Fatalf("loaded %d specs, want %d", len(specs), len(Presets()))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Name >= specs[i].Name {
			t.Errorf("LoadDir order: %q before %q", specs[i-1].Name, specs[i].Name)
		}
	}
	// Non-spec files are ignored; duplicate names across files are not.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err != nil {
		t.Errorf("non-JSON files should be ignored: %v", err)
	}
	dup, _ := Encode(want)
	if err := os.WriteFile(filepath.Join(dir, "zz-dup.json"), dup, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate spec names should fail, got %v", err)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory should fail")
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestFuseComposite(t *testing.T) {
	w, err := Fuse(Composite{Label: "duo", Parts: []Part{{App: "Hypre", Weight: 3}, {App: "FFT", Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	mustNew := func(app string) *workload.Workload {
		e, err := dwarfs.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		return e.New()
	}
	hy, fft := mustNew("Hypre"), mustNew("FFT")
	if len(w.Phases) != len(hy.Phases)+len(fft.Phases) {
		t.Errorf("phases = %d, want %d", len(w.Phases), len(hy.Phases)+len(fft.Phases))
	}
	if w.Footprint != hy.Footprint+fft.Footprint {
		t.Errorf("footprint %v, want coexisting sum %v", w.Footprint, hy.Footprint+fft.Footprint)
	}
	if !strings.HasPrefix(w.Phases[0].Name, "Hypre/") {
		t.Errorf("phase names should be app-prefixed, got %q", w.Phases[0].Name)
	}
	// The dominant part anchors the profiling concurrency.
	if w.BaseThreads != hy.BaseThreads {
		t.Errorf("base threads %d, want Hypre's %d", w.BaseThreads, hy.BaseThreads)
	}
	if w.FoM.Higher {
		t.Error("composite FoM must be time-based")
	}
	for _, bad := range []Composite{
		{Label: "", Parts: []Part{{App: "FFT", Weight: 1}}},
		{Label: "x"},
		{Label: "x", Parts: []Part{{App: "FFT", Weight: 0}}},
		{Label: "x", Parts: []Part{{App: "NoSuchApp", Weight: 1}}},
	} {
		if _, err := Fuse(bad); err == nil {
			t.Errorf("Fuse(%+v) should fail", bad)
		}
	}
}

func TestOutcomeJSON(t *testing.T) {
	sp := Spec{Name: "j", Apps: []string{"FFT"}, Modes: []memsys.Mode{memsys.UncachedNVM}, Threads: []int{48}}
	outs, err := sp.Run(eng(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(outs[0])
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	if rec["mode"] != "uncached-NVM" {
		t.Errorf("mode = %v, want the name, not the enum", rec["mode"])
	}
	for _, k := range []string{"app", "threads", "scale", "time_s", "fom", "slowdown", "nvm_read_gbps"} {
		if _, ok := rec[k]; !ok {
			t.Errorf("outcome JSON missing %q: %s", k, b)
		}
	}
}

// A directory with several broken specs reports every failure with its
// file name — one typo must not hide the defects in the files after it.
func TestLoadDirReportsEveryBrokenFile(t *testing.T) {
	dir := t.TempDir()
	good, err := Encode(Presets()[0])
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"aa-good.json":    string(good),
		"bb-syntax.json":  `{"name": "bb", "apps": [`,
		"cc-unknown.json": `{"name": "cc", "apps": ["NoSuchApp"]}`,
		"dd-axis.json":    `{"name": "dd", "threadz": [8]}`,
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err = LoadDir(dir)
	if err == nil {
		t.Fatal("broken specs loaded silently")
	}
	for _, name := range []string{"bb-syntax.json", "cc-unknown.json", "dd-axis.json"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not name %s:\n%v", name, err)
		}
	}
	if strings.Contains(err.Error(), "aa-good.json") {
		t.Errorf("error names the good file:\n%v", err)
	}
}
