package planner

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/memsys"
	"repro/internal/platform"
	"repro/internal/resultstore"
	"repro/internal/scenario"
	"repro/internal/units"
)

func sock() *platform.Socket { return platform.NewPurley().Socket(0) }

func newEngine() *engine.Engine { return engine.New(sock(), 0) }

// frontierTolerance documents the acceptance band between the planner's
// frontier and the exhaustive one: every exhaustive frontier point must
// be matched by a planner frontier point using no more DRAM and at most
// this much more time, and vice versa.
const frontierTolerance = 0.05

// The headline property: on the full-cartesian space (216 points) the
// planner resolves a frontier equivalent to the exhaustive explorer's
// within the documented tolerance, while really evaluating at most half
// the points — all of which land in the result store and re-serve as
// cache hits on a second run.
func TestPlannerMatchesExhaustiveFrontier(t *testing.T) {
	sp, err := scenario.ByName("full-cartesian")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.NewWithStore(sock(), 0, store)
	res, err := RunSpec(context.Background(), eng, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Points)
	if n != sp.Size() {
		t.Fatalf("planned %d points, spec has %d", n, sp.Size())
	}
	if res.Evaluations > n/2 {
		t.Errorf("planner evaluated %d of %d points, want <= %d", res.Evaluations, n, n/2)
	}
	if !res.FrontierResolved {
		t.Error("frontier not fully verified by real evaluations")
	}
	st := eng.Stats()
	if int(st.Misses) != res.Evaluations {
		t.Errorf("engine computed %d points, planner reports %d evaluations", st.Misses, res.Evaluations)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm second run: every evaluation re-serves from disk.
	warm, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if got := warm.Persisted(); got != res.Evaluations {
		t.Errorf("store persisted %d records, want %d", got, res.Evaluations)
	}
	eng2 := engine.NewWithStore(sock(), 0, warm)
	res2, err := RunSpec(context.Background(), eng2, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2 := eng2.Stats(); st2.Misses != 0 || int(st2.Hits) != res2.Evaluations {
		t.Errorf("warm run stats = %+v, want all %d evaluations as hits", st2, res2.Evaluations)
	}
	if Render(res) != Render(res2) {
		t.Error("planner run is not deterministic across cold and warm stores")
	}

	// The exhaustive control: the degenerate full-seed plan.
	full := sp
	full.Plan = &scenario.Plan{Seed: scenario.SeedFull, BudgetFrac: 1}
	exh, err := RunSpec(context.Background(), eng2, full, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exh.Evaluations != n {
		t.Fatalf("exhaustive control evaluated %d of %d", exh.Evaluations, n)
	}
	matchFrontiers(t, exh.FrontierPoints(), res.FrontierPoints())
}

// matchFrontiers asserts two frontiers are equivalent within the
// documented tolerance, both directions.
func matchFrontiers(t *testing.T, want, got []PlannedPoint) {
	t.Helper()
	covered := func(p PlannedPoint, in []PlannedPoint) bool {
		for _, q := range in {
			if q.Meta.App == p.Meta.App && q.DRAMUsed <= p.DRAMUsed &&
				q.Time.Seconds() <= p.Time.Seconds()*(1+frontierTolerance) {
				return true
			}
		}
		return false
	}
	for _, p := range want {
		if !covered(p, got) {
			t.Errorf("exhaustive frontier point %s %s @%d (%.3fs, %s) not covered by planner frontier",
				p.Meta.App, p.Meta.Mode, p.Meta.Threads, p.Time.Seconds(), p.DRAMUsed)
		}
	}
	for _, p := range got {
		if !covered(p, want) {
			t.Errorf("planner frontier point %s %s @%d (%.3fs, %s) not near the exhaustive frontier",
				p.Meta.App, p.Meta.Mode, p.Meta.Threads, p.Time.Seconds(), p.DRAMUsed)
		}
	}
}

// PointsFromSpec derives the frontier's DRAM axis from the mode, with
// DRAM-only feasibility against the socket capacity.
func TestPointsFromSpec(t *testing.T) {
	sp := scenario.Spec{
		Name:   "feas",
		Apps:   []string{"Hypre"},
		Modes:  []memsys.Mode{memsys.DRAMOnly, memsys.CachedNVM, memsys.UncachedNVM},
		Scales: []float64{1, 4},
	}
	pts, err := PointsFromSpec(sp, sock())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	cap := sock().DRAM.Capacity
	for _, p := range pts {
		switch p.Meta.Mode {
		case memsys.DRAMOnly:
			if p.DRAMUsed != p.Job.Workload.Footprint {
				t.Errorf("DRAM-only at scale %g uses %s, want footprint %s", p.Meta.Scale, p.DRAMUsed, p.Job.Workload.Footprint)
			}
			if wantFeasible := p.Job.Workload.Footprint <= cap; p.Feasible != wantFeasible {
				t.Errorf("DRAM-only at scale %g feasible = %v", p.Meta.Scale, p.Feasible)
			}
		case memsys.CachedNVM:
			if p.DRAMUsed != cap || !p.Feasible {
				t.Errorf("cached-NVM uses %s, feasible %v", p.DRAMUsed, p.Feasible)
			}
		case memsys.UncachedNVM:
			if p.DRAMUsed != 0 || !p.Feasible {
				t.Errorf("uncached uses %s", p.DRAMUsed)
			}
		}
	}
	// The 4x Hypre footprint is the paper's beyond-DRAM case.
	if pts[3].Meta.Scale != 4 || pts[3].Feasible {
		t.Errorf("4x footprint on DRAM-only should be infeasible (%+v)", pts[3].Meta)
	}
}

// The observer sees the seed round first, the predict round last, and
// every point exactly once across rounds.
func TestPlannerObserver(t *testing.T) {
	sp, err := scenario.ByName("prediction-concurrency")
	if err != nil {
		t.Fatal(err)
	}
	var events []Progress
	res, err := RunSpec(context.Background(), newEngine(), sp, func(p Progress) {
		events = append(events, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Rounds) {
		t.Fatalf("%d events for %d rounds", len(events), len(res.Rounds))
	}
	if events[0].Round.Phase != "seed" {
		t.Errorf("first round phase %q", events[0].Round.Phase)
	}
	if last := events[len(events)-1].Round; last.Phase != "predict" {
		t.Errorf("last round phase %q", last.Phase)
	}
	seen := map[int]int{}
	total := 0
	for _, ev := range events {
		for _, p := range ev.Points {
			seen[p.Index]++
			total++
		}
	}
	if total != len(res.Points) {
		t.Errorf("events carried %d points, want %d exactly once", total, len(res.Points))
	}
	for idx, c := range seen {
		if c != 1 {
			t.Errorf("point %d appeared %d times", idx, c)
		}
	}
	if res.Evaluations >= len(res.Points) {
		t.Errorf("no points were predicted: %d/%d evaluated", res.Evaluations, len(res.Points))
	}
}

// The budget is a hard cap, enforced round-robin across groups so every
// group still gets a seed when the budget allows one each.
func TestPlannerBudgetCap(t *testing.T) {
	sp, err := scenario.ByName("full-cartesian")
	if err != nil {
		t.Fatal(err)
	}
	sp.Plan = &scenario.Plan{BudgetFrac: 0.15} // 32 of 216
	res, err := RunSpec(context.Background(), newEngine(), sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != 32 {
		t.Fatalf("budget = %d", res.Budget)
	}
	if res.Evaluations > res.Budget {
		t.Errorf("evaluated %d past the budget %d", res.Evaluations, res.Budget)
	}
	// 24 groups (8 apps x 3 modes): a 32-point budget seeds every group
	// at least once.
	groups := map[string]int{}
	for _, p := range res.Points {
		if p.Evaluated {
			groups[p.Meta.App+"|"+p.Meta.Mode.String()]++
		}
	}
	if len(groups) != 24 {
		t.Errorf("budgeted seed covered %d of 24 groups", len(groups))
	}
}

// Seed "full" with budget 1 is the exhaustive sweep; its point log
// carries no predictions.
func TestPlannerFullSeed(t *testing.T) {
	sp, err := scenario.ByName("ft-divergence")
	if err != nil {
		t.Fatal(err)
	}
	sp.Plan = &scenario.Plan{Seed: scenario.SeedFull, BudgetFrac: 1}
	res, err := RunSpec(context.Background(), newEngine(), sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != len(res.Points) {
		t.Errorf("full seed evaluated %d of %d", res.Evaluations, len(res.Points))
	}
	for _, p := range res.Points {
		if !p.Evaluated {
			t.Errorf("point %d not evaluated under full seed", p.Index)
		}
	}
}

func TestPlannerCancellation(t *testing.T) {
	sp, err := scenario.ByName("full-cartesian")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSpec(ctx, newEngine(), sp, nil); err == nil {
		t.Error("cancelled plan should fail")
	}
}

func TestPlannerRejectsBadInput(t *testing.T) {
	if _, err := Run(context.Background(), newEngine(), nil, Options{}); err == nil {
		t.Error("empty space should fail")
	}
	_, err := Run(context.Background(), newEngine(), []Point{{}}, Options{
		Plan: scenario.Plan{Seed: "psychic"},
	})
	if err == nil {
		t.Error("bad plan should fail before evaluation")
	}
}

// An infeasible point may train the model but must never reach the
// frontier.
func TestFrontierExcludesInfeasible(t *testing.T) {
	sp := scenario.Spec{
		Name:   "beyond",
		Apps:   []string{"Hypre"},
		Modes:  []memsys.Mode{memsys.DRAMOnly, memsys.CachedNVM},
		Scales: []float64{4},
	}
	res, err := RunSpec(context.Background(), newEngine(), sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.FrontierPoints() {
		if !p.Feasible {
			t.Errorf("infeasible point on the frontier: %+v", p.Meta)
		}
		if p.Meta.Mode == memsys.DRAMOnly {
			t.Errorf("beyond-DRAM footprint kept DRAM-only on the frontier")
		}
	}
	if len(res.Frontier) == 0 {
		t.Error("empty frontier")
	}
	var _ units.Bytes // keep the units import honest if asserts change
}
