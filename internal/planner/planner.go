// Package planner is the adaptive sweep planner: the operational form
// of the paper's Section V argument that the heterogeneous-memory
// configuration space is too large to search exhaustively. Instead of
// evaluating every point of a sweep, the planner evaluates a seeded
// subset through the evaluation engine (so every real evaluation is
// cached, persisted by a disk result store, and cancellable), trains
// the configuration-space regression of internal/model on it, predicts
// the remaining points, and spends the rest of a configurable
// evaluation budget where the model's leave-one-out ensemble disagrees
// with itself and on verifying the candidate Pareto frontier with real
// evaluations — iterating until the frontier is stable and evaluated,
// the budget is exhausted, or the round limit is hit.
//
// The plan itself is declarative: a scenario.Spec's optional "plan"
// block (scenario.Plan) selects the seed strategy, the budget fraction,
// the disagreement threshold and the objective, so the same spec file
// that names a sweep also names how to resolve it cheaply. The
// exhaustive sweep is the degenerate plan (seed "full").
//
// Determinism: seed selection, model fitting, candidate ordering and
// frontier computation are all pure functions of the point list and the
// evaluated results, and the engine's batches are deterministic, so a
// plan run is byte-reproducible — the golden corpus pins two presets'
// plans end to end.
package planner

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/memsys"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/units"
	"repro/internal/workload"
)

// Point is one candidate configuration of the space the planner
// resolves: an engine job plus the frontier bookkeeping the exhaustive
// explorer tracked per option.
type Point struct {
	Meta scenario.Meta
	Job  engine.Job
	// Group keys the regression: points sharing a group are fit and
	// predicted together over their (threads, scale) sub-grid. Empty
	// defaults to App|Mode — the right grouping for spec-shaped spaces;
	// the explorer adds the placement budget so differently budgeted
	// Placed options never share a fit.
	Group string
	// DRAMUsed is the DRAM capacity the configuration consumes (the
	// frontier's second axis); Feasible marks configurations whose
	// capacity requirements hold.
	DRAMUsed units.Bytes
	Feasible bool
}

// group returns the regression group key.
func (p Point) group() string {
	if p.Group != "" {
		return p.Group
	}
	return p.Meta.App + "|" + p.Meta.Mode.String()
}

// PlannedPoint is a point's resolution: evaluated for real through the
// engine, or carried by the model's prediction.
type PlannedPoint struct {
	Point
	// Index is the point's position in the input space (and in
	// Result.Points).
	Index int
	// Round is the 1-based round that evaluated the point; 0 for points
	// resolved by prediction only.
	Round int
	// Evaluated marks real evaluations; their Result is set and Time is
	// the engine's. Predicted points carry the model's Time.
	Evaluated bool
	Time      units.Duration
	// Predicted is the model's estimate for the point (also set for
	// points that were evaluated after the first fit — the predicted
	// column of the plan log); zero until a model covered the point.
	Predicted units.Duration
	// Disagreement is the model ensemble's relative spread at the point
	// when it was last predicted.
	Disagreement float64
	Result       workload.Result
}

// Round summarizes one planner iteration. The JSON form is the
// per-iteration progress record of plan sessions and the nvmserve plan
// status document.
type Round struct {
	// N is 1-based; round 1 is the seed round.
	N int `json:"round"`
	// Phase is "seed", "refine" (disagreement-driven evaluations),
	// "verify" (frontier members only) or "predict" (the final
	// model-only resolution of the remainder).
	Phase string `json:"phase"`
	// Evaluated counts the real evaluations this round submitted;
	// Predicted the points still carried by prediction after it.
	Evaluated int `json:"evaluated"`
	Predicted int `json:"predicted"`
}

// Progress is one observer event: a completed round and the points it
// resolved, in canonical point order.
type Progress struct {
	Round  Round
	Points []PlannedPoint
	// EvaluatedTotal is the cumulative real-evaluation count; Total the
	// space size.
	EvaluatedTotal, Total int
}

// Result is a resolved plan.
type Result struct {
	Name string
	// Points is the full space in input order, each resolved by
	// evaluation or prediction.
	Points []PlannedPoint
	// Frontier indexes the per-application Pareto-optimal points
	// (minimizing time and DRAM use among feasible, resolved points),
	// ordered by application appearance then time.
	Frontier []int
	Rounds   []Round
	// Budget is the maximum number of real evaluations the plan was
	// allowed; Evaluations the number it actually submitted.
	Budget      int
	Evaluations int
	// FrontierResolved reports whether every frontier member was
	// evaluated for real (false when the budget or round limit ran out
	// first).
	FrontierResolved bool
}

// FrontierPoints returns the frontier as points.
func (r *Result) FrontierPoints() []PlannedPoint {
	out := make([]PlannedPoint, len(r.Frontier))
	for i, idx := range r.Frontier {
		out[i] = r.Points[idx]
	}
	return out
}

// Options configures a run beyond the declarative plan block.
type Options struct {
	// Name labels the result (specs pass their name).
	Name string
	// Plan is the declarative configuration; zero values default (see
	// scenario.Plan.Defaults).
	Plan scenario.Plan
	// Observer, when non-nil, receives one Progress event per completed
	// round (including the final "predict" round), synchronously.
	Observer func(Progress)
}

// ModeDRAM derives a configuration's DRAM consumption and feasibility
// from its mode — the frontier's second axis: DRAM-only consumes the
// (scaled) footprint and needs it to fit the socket, cached-NVM
// dedicates the whole DRAM as cache, uncached-NVM consumes none.
// Placed-mode consumption is a property of the placement plan, not the
// mode; callers with placements set it themselves.
func ModeDRAM(mode memsys.Mode, footprint, capacity units.Bytes) (used units.Bytes, feasible bool) {
	switch mode {
	case memsys.DRAMOnly:
		return footprint, footprint <= capacity
	case memsys.CachedNVM:
		return capacity, true
	default:
		return 0, true
	}
}

// PointsFromSpec expands a scenario spec into planner points with the
// ModeDRAM frontier axis attached.
func PointsFromSpec(sp scenario.Spec, sock *platform.Socket) ([]Point, error) {
	metas, jobs, err := sp.Expand()
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(jobs))
	for i := range jobs {
		pt := Point{Meta: metas[i], Job: jobs[i]}
		pt.DRAMUsed, pt.Feasible = ModeDRAM(metas[i].Mode, jobs[i].Workload.Footprint, sock.DRAM.Capacity)
		out[i] = pt
	}
	return out, nil
}

// BatchRunner is the slice of the evaluation engine the planner needs:
// cancellable batch evaluation with results in submission order.
// *engine.Engine satisfies it directly; the session layer substitutes
// an executor-backed runner so plan rounds dispatch across a fleet of
// workers exactly like sweep batches, byte-identically (the planner is
// a pure function of the results it gets back).
type BatchRunner interface {
	RunBatchCtx(ctx context.Context, jobs []engine.Job) ([]workload.Result, error)
}

// Engine is the planner's full engine surface: batch evaluation plus
// the socket the point space is derived from.
type Engine interface {
	BatchRunner
	Socket() *platform.Socket
}

// RunSpec resolves a spec through the planner: the spec's "plan" block
// configures it (absent means all defaults).
func RunSpec(ctx context.Context, eng Engine, sp scenario.Spec, obs func(Progress)) (*Result, error) {
	points, err := PointsFromSpec(sp, eng.Socket())
	if err != nil {
		return nil, err
	}
	opts := Options{Name: sp.Name, Observer: obs}
	if sp.Plan != nil {
		opts.Plan = *sp.Plan
	}
	return Run(ctx, eng, points, opts)
}

// BudgetFor returns the real-evaluation budget the planner will operate
// under for a point space: floor(BudgetFrac x points), floored at one
// point per regression group — nothing can be predicted from a group
// with no real evaluation (documented on scenario.Plan.BudgetFrac).
func BudgetFor(points []Point, cfg scenario.Plan) int {
	cfg = cfg.Defaults()
	budget := int(cfg.BudgetFrac * float64(len(points)))
	groups := map[string]bool{}
	for _, p := range points {
		groups[p.group()] = true
	}
	if budget < len(groups) {
		budget = len(groups)
	}
	return budget
}

// Run resolves the point space. Every real evaluation flows through the
// engine (one batch per round), so points land in its result store and
// re-serve as cache hits on later runs.
func Run(ctx context.Context, eng BatchRunner, points []Point, opts Options) (*Result, error) {
	cfg := opts.Plan
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("planner: %w", err)
	}
	cfg = cfg.Defaults()
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("planner: empty point space")
	}
	res := &Result{
		Name:   opts.Name,
		Points: make([]PlannedPoint, n),
		Budget: BudgetFor(points, cfg),
	}
	for i, pt := range points {
		res.Points[i] = PlannedPoint{Point: pt, Index: i}
	}
	groups := groupIndices(res.Points)

	// Round 1: the seed, capped with per-group round-robin so a tight
	// budget still covers every group. A quarter of the budget is held
	// back from seeding (down to the one-per-group floor) so frontier
	// verification and refinement are never starved by the seed itself;
	// the full-seed strategy deliberately bypasses the reserve.
	seedBudget := res.Budget
	if cfg.Seed != scenario.SeedFull {
		seedBudget -= res.Budget / 4
		if seedBudget < len(groups.keys) {
			seedBudget = len(groups.keys)
		}
	}
	seed := capToBudget(seedIndices(cfg.Seed, groups, res.Points), groups, seedBudget)
	if err := evaluate(ctx, eng, res, seed, "seed", opts.Observer); err != nil {
		return nil, err
	}

	// perRound bounds disagreement-driven evaluations per iteration so
	// the model gets to re-fit before the budget is spent.
	perRound := n / 16
	if perRound < 1 {
		perRound = 1
	}
	for len(res.Rounds) < 1+cfg.MaxRounds {
		fitAndPredict(groups, res)
		frontier := pareto(res.Points)
		toEval := pickCandidates(res, frontier, cfg.Threshold, perRound)
		if len(toEval) == 0 {
			break
		}
		phase := "verify"
		inFrontier := map[int]bool{}
		for _, idx := range frontier {
			inFrontier[idx] = true
		}
		for _, idx := range toEval {
			if !inFrontier[idx] {
				phase = "refine"
				break
			}
		}
		if err := evaluate(ctx, eng, res, toEval, phase, opts.Observer); err != nil {
			return nil, err
		}
	}

	// Final resolution: predict the remainder with the fully trained
	// model and settle the frontier.
	fitAndPredict(groups, res)
	res.Frontier = pareto(res.Points)
	res.FrontierResolved = true
	for _, idx := range res.Frontier {
		if !res.Points[idx].Evaluated {
			res.FrontierResolved = false
		}
	}
	var predicted []PlannedPoint
	for i := range res.Points {
		if !res.Points[i].Evaluated {
			predicted = append(predicted, res.Points[i])
		}
	}
	final := Round{N: len(res.Rounds) + 1, Phase: "predict", Predicted: len(predicted)}
	res.Rounds = append(res.Rounds, final)
	if opts.Observer != nil {
		opts.Observer(Progress{Round: final, Points: predicted, EvaluatedTotal: res.Evaluations, Total: n})
	}
	return res, nil
}

// groupIndices buckets point indices by regression group, keys sorted.
type groupSet struct {
	keys    []string
	members map[string][]int
}

func groupIndices(points []PlannedPoint) groupSet {
	gs := groupSet{members: map[string][]int{}}
	for i := range points {
		k := points[i].group()
		if _, ok := gs.members[k]; !ok {
			gs.keys = append(gs.keys, k)
		}
		gs.members[k] = append(gs.members[k], i)
	}
	sort.Strings(gs.keys)
	return gs
}

// seedIndices selects the seed evaluation set per group.
func seedIndices(strategy string, groups groupSet, points []PlannedPoint) [][]int {
	var out [][]int
	for _, k := range groups.keys {
		m := groups.members[k]
		switch strategy {
		case scenario.SeedFull:
			out = append(out, append([]int(nil), m...))
		case scenario.SeedStride:
			var sel []int
			for i := 0; i < len(m); i += 2 {
				sel = append(sel, m[i])
			}
			if last := m[len(m)-1]; len(sel) == 0 || sel[len(sel)-1] != last {
				sel = append(sel, last)
			}
			out = append(out, sel)
		default: // SeedEdges
			out = append(out, edgeSeeds(m, points))
		}
	}
	return out
}

// edgeSeeds picks the corners and midpoints of a group's threads x
// scales sub-grid (everything for groups of four points or fewer).
func edgeSeeds(members []int, points []PlannedPoint) []int {
	if len(members) <= 4 {
		return append([]int(nil), members...)
	}
	pick := func(vals []float64) map[float64]bool {
		sort.Float64s(vals)
		sel := map[float64]bool{vals[0]: true, vals[len(vals)-1]: true}
		if len(vals) >= 3 {
			sel[vals[len(vals)/2]] = true
		}
		return sel
	}
	var threads, scales []float64
	seenT, seenS := map[float64]bool{}, map[float64]bool{}
	for _, i := range members {
		t, s := float64(points[i].Meta.Threads), points[i].Meta.Scale
		if !seenT[t] {
			seenT[t] = true
			threads = append(threads, t)
		}
		if !seenS[s] {
			seenS[s] = true
			scales = append(scales, s)
		}
	}
	selT, selS := pick(threads), pick(scales)
	var out []int
	for _, i := range members {
		if selT[float64(points[i].Meta.Threads)] && selS[points[i].Meta.Scale] {
			out = append(out, i)
		}
	}
	return out
}

// capToBudget flattens per-group seed lists round-robin and truncates
// at the budget, so a tight budget degrades coverage evenly instead of
// starving the later groups.
func capToBudget(perGroup [][]int, groups groupSet, budget int) []int {
	var out []int
	for rank := 0; ; rank++ {
		advanced := false
		for _, sel := range perGroup {
			if rank < len(sel) {
				advanced = true
				if len(out) < budget {
					out = append(out, sel[rank])
				}
			}
		}
		if !advanced || len(out) >= budget {
			break
		}
	}
	sort.Ints(out)
	return out
}

// evaluate runs the indexed points as one engine batch and records the
// round.
func evaluate(ctx context.Context, eng BatchRunner, res *Result, idxs []int, phase string, obs func(Progress)) error {
	round := Round{N: len(res.Rounds) + 1, Phase: phase, Evaluated: len(idxs)}
	if len(idxs) > 0 {
		jobs := make([]engine.Job, len(idxs))
		for i, idx := range idxs {
			jobs[i] = res.Points[idx].Job
		}
		results, err := eng.RunBatchCtx(ctx, jobs)
		if err != nil {
			return fmt.Errorf("planner: round %d (%s): %w", round.N, phase, err)
		}
		for i, idx := range idxs {
			p := &res.Points[idx]
			p.Evaluated = true
			p.Round = round.N
			p.Result = results[i]
			p.Time = results[i].Time
		}
		res.Evaluations += len(idxs)
	}
	round.Predicted = len(res.Points) - res.Evaluations
	res.Rounds = append(res.Rounds, round)
	if obs != nil {
		pts := make([]PlannedPoint, len(idxs))
		for i, idx := range idxs {
			pts[i] = res.Points[idx]
		}
		obs(Progress{Round: round, Points: pts, EvaluatedTotal: res.Evaluations, Total: len(res.Points)})
	}
	return nil
}

// fitAndPredict trains each group's ensemble on its evaluated points
// and refreshes the prediction and disagreement of the others. Groups
// without any evaluated point (possible only under a budget smaller
// than the group count) stay unresolved: Time 0, excluded from the
// frontier.
func fitAndPredict(groups groupSet, res *Result) {
	for _, k := range groups.keys {
		var X [][]float64
		var y []float64
		var rest []int
		for _, i := range groups.members[k] {
			p := &res.Points[i]
			feats := model.ConfigFeatures(p.Job.Workload, p.Meta.Threads, p.Meta.Scale)
			if p.Evaluated {
				X = append(X, feats)
				y = append(y, p.Result.Time.Seconds())
			} else {
				rest = append(rest, i)
			}
		}
		if len(X) == 0 || len(rest) == 0 {
			continue
		}
		ens, err := model.FitPointEnsemble(X, y)
		if err != nil {
			// Degenerate group data (e.g. zero-time results); leave the
			// rest unresolved rather than predicting nonsense.
			continue
		}
		for _, i := range rest {
			p := &res.Points[i]
			feats := model.ConfigFeatures(p.Job.Workload, p.Meta.Threads, p.Meta.Scale)
			p.Predicted = units.Duration(ens.Predict(feats))
			p.Disagreement = ens.Disagreement(feats)
			p.Time = p.Predicted
		}
	}
}

// pickCandidates selects the next round's evaluations: unevaluated
// frontier members first (they must be verified for real), then the
// most-disagreeing predicted points above the threshold, up to the
// remaining budget and the per-round cap.
func pickCandidates(res *Result, frontier []int, threshold float64, perRound int) []int {
	remaining := res.Budget - res.Evaluations
	if remaining <= 0 {
		return nil
	}
	var out []int
	taken := map[int]bool{}
	for _, idx := range frontier {
		if len(out) >= remaining {
			break
		}
		if !res.Points[idx].Evaluated && res.Points[idx].Time > 0 {
			out = append(out, idx)
			taken[idx] = true
		}
	}
	type cand struct {
		idx int
		d   float64
	}
	var cands []cand
	for i := range res.Points {
		p := &res.Points[i]
		if p.Evaluated || taken[i] || p.Time == 0 || p.Disagreement <= threshold {
			continue
		}
		cands = append(cands, cand{i, p.Disagreement})
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].d > cands[b].d })
	for i := 0; i < len(cands) && i < perRound && len(out) < remaining; i++ {
		out = append(out, cands[i].idx)
	}
	sort.Ints(out)
	return out
}

// pareto returns the indices of the per-application non-dominated
// feasible resolved points (minimizing time and DRAM use), ordered by
// application appearance then time then DRAM.
func pareto(points []PlannedPoint) []int {
	byApp := map[string][]int{}
	var apps []string
	for i := range points {
		app := points[i].Meta.App
		if _, ok := byApp[app]; !ok {
			apps = append(apps, app)
		}
		byApp[app] = append(byApp[app], i)
	}
	var out []int
	for _, app := range apps {
		m := byApp[app]
		var front []int
		for _, i := range m {
			e := &points[i]
			if !e.Feasible || e.Time <= 0 {
				continue
			}
			dominated := false
			for _, j := range m {
				f := &points[j]
				if !f.Feasible || f.Time <= 0 || i == j {
					continue
				}
				if f.Time <= e.Time && f.DRAMUsed <= e.DRAMUsed &&
					(f.Time < e.Time || f.DRAMUsed < e.DRAMUsed) {
					dominated = true
					break
				}
			}
			if !dominated {
				front = append(front, i)
			}
		}
		sort.SliceStable(front, func(a, b int) bool {
			pa, pb := &points[front[a]], &points[front[b]]
			if pa.Time != pb.Time {
				return pa.Time < pb.Time
			}
			return pa.DRAMUsed < pb.DRAMUsed
		})
		out = append(out, front...)
	}
	return out
}
