package planner

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Render formats a resolved plan as the canonical text artifact: the
// headline accounting, the per-round progress, the verified frontier
// and the full point log (evaluated versus predicted). The render
// excludes run-environment facts (worker counts, cache hit rates) so
// the golden corpus pins only planner behaviour.
func Render(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s: %d points, %d evaluated (%.1f%%), budget %d, frontier resolved: %v\n",
		r.Name, len(r.Points), r.Evaluations,
		100*float64(r.Evaluations)/float64(len(r.Points)), r.Budget, r.FrontierResolved)
	for _, rd := range r.Rounds {
		fmt.Fprintf(&b, "round %d %-7s evaluated %3d, carried by prediction %3d\n",
			rd.N, rd.Phase+":", rd.Evaluated, rd.Predicted)
	}
	b.WriteString("frontier (per app, minimizing time and DRAM):\n")
	for _, p := range r.FrontierPoints() {
		fmt.Fprintf(&b, "  %-12s %-14s %7d %6.2g %10.3f %10s  %s\n",
			p.Meta.App, p.Meta.Mode, p.Meta.Threads, p.Meta.Scale,
			p.Time.Seconds(), p.DRAMUsed, source(p))
	}
	b.WriteString("points:\n")
	fmt.Fprintf(&b, "  %-12s %-14s %7s %6s %10s %10s  %s\n",
		"App", "Mode", "Threads", "Scale", "Time(s)", "DRAM", "Source")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-12s %-14s %7d %6.2g %10.3f %10s  %s\n",
			p.Meta.App, p.Meta.Mode, p.Meta.Threads, p.Meta.Scale,
			p.Time.Seconds(), p.DRAMUsed, source(p))
	}
	return b.String()
}

// source labels how a point was resolved.
func source(p PlannedPoint) string {
	if p.Evaluated {
		return fmt.Sprintf("evaluated (round %d)", p.Round)
	}
	if p.Time == 0 {
		return "unresolved"
	}
	return "predicted"
}

// MarshalJSON renders a planned point as a flat record — the NDJSON
// line schema of nvmserve's plan point stream, mode by name like the
// sweep outcome schema.
func (p PlannedPoint) MarshalJSON() ([]byte, error) {
	rec := struct {
		App         string  `json:"app"`
		Mode        string  `json:"mode"`
		Threads     int     `json:"threads"`
		Scale       float64 `json:"scale"`
		TimeSeconds float64 `json:"time_s"`
		Evaluated   bool    `json:"evaluated"`
		Round       int     `json:"round,omitempty"`
		PredictedS  float64 `json:"predicted_s,omitempty"`
		DRAMBytes   int64   `json:"dram_bytes"`
		Feasible    bool    `json:"feasible"`
	}{
		App:         p.Meta.App,
		Mode:        p.Meta.Mode.String(),
		Threads:     p.Meta.Threads,
		Scale:       p.Meta.Scale,
		TimeSeconds: p.Time.Seconds(),
		Evaluated:   p.Evaluated,
		Round:       p.Round,
		PredictedS:  p.Predicted.Seconds(),
		DRAMBytes:   int64(p.DRAMUsed),
		Feasible:    p.Feasible,
	}
	return json.Marshal(rec)
}
