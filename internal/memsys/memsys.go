package memsys

import (
	"fmt"

	"repro/internal/dramcache"
	"repro/internal/memdev"
	"repro/internal/platform"
	"repro/internal/units"
)

// platformCores is the per-socket physical core count; threads beyond it
// are hyperthreads, which amplify cache-conflict pressure.
const platformCores = 24

// Mode selects the main-memory configuration under evaluation.
type Mode int

const (
	// DRAMOnly uses DRAM as the entire main memory (the paper's
	// reference configuration; inputs sized 50-85% of DRAM).
	DRAMOnly Mode = iota
	// CachedNVM is Memory mode: DRAM is a hardware-managed direct-mapped
	// write-back cache in front of NVM.
	CachedNVM
	// UncachedNVM is AppDirect with the NVM exposed as a NUMA node and
	// all application data placed there (numactl --membind to the NVM
	// node).
	UncachedNVM
	// Placed is AppDirect with per-data-structure placement: structures
	// assigned to DRAM stay there, the rest live on NVM (Section V-B's
	// write-aware placement).
	Placed
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case DRAMOnly:
		return "DRAM"
	case CachedNVM:
		return "cached-NVM"
	case UncachedNVM:
		return "uncached-NVM"
	case Placed:
		return "write-aware"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Modes lists the three paper-wide configurations (Placed is opt-in).
func Modes() []Mode { return []Mode{DRAMOnly, CachedNVM, UncachedNVM} }

// Phase describes one epoch of an application's execution by its memory
// demand signature, as measured (conceptually) on unconstrained DRAM at
// the workload's base concurrency.
type Phase struct {
	Name string
	// Share is the fraction of the DRAM-baseline runtime spent in this
	// phase; shares across a workload's phases sum to 1.
	Share float64
	// ReadBW and WriteBW are the demanded bandwidths on DRAM at base
	// concurrency.
	ReadBW, WriteBW units.Bandwidth
	// ReadMix describes the read stream; WritePattern the store stream.
	ReadMix      PatternMix
	WritePattern memdev.Pattern
	// WorkingSet is the actively-reused data volume per sweep of this
	// phase; it drives the Memory-mode hit rate. It can be far smaller
	// than the application footprint (e.g. SuperLU panels).
	WorkingSet units.Bytes
	// LatencyBound is the fraction of phase time that is dependent-load
	// latency, not hidden by MLP; it converts device latency ratios into
	// slowdown for pointer-chasing phases.
	LatencyBound float64
	// AliasFactor multiplies the mix's conflict sensitivity in the DRAM
	// cache model; >1 models power-of-two stride aliasing (e.g. 2D
	// block-cyclic layouts).
	AliasFactor float64
	// Iterations shapes trace rendering: the phase repeats this many
	// times interleaved with its neighbours (0 = once).
	Iterations int
}

// Validate sanity-checks a phase.
func (p Phase) Validate() error {
	if p.Share < 0 || p.Share > 1 {
		return fmt.Errorf("memsys: phase %q share %v out of [0,1]", p.Name, p.Share)
	}
	if p.ReadBW < 0 || p.WriteBW < 0 {
		return fmt.Errorf("memsys: phase %q negative bandwidth", p.Name)
	}
	if err := p.ReadMix.Validate(); err != nil {
		return fmt.Errorf("phase %q: %w", p.Name, err)
	}
	if !p.WritePattern.Valid() {
		return fmt.Errorf("memsys: phase %q invalid write pattern", p.Name)
	}
	if p.LatencyBound < 0 || p.LatencyBound > 1 {
		return fmt.Errorf("memsys: phase %q latency bound %v out of [0,1]", p.Name, p.LatencyBound)
	}
	return nil
}

func (p Phase) aliasFactor() float64 {
	if p.AliasFactor <= 0 {
		return 1
	}
	return p.AliasFactor
}

// writeShare is writes/(reads+writes) of the demanded traffic.
func (p Phase) writeShare() float64 {
	total := float64(p.ReadBW + p.WriteBW)
	if total == 0 {
		return 0
	}
	return float64(p.WriteBW) / total
}

// System models one socket's memory subsystem in a given mode, matching
// the paper's local-socket experiments.
type System struct {
	Socket *platform.Socket
	Mode   Mode

	// WritebackThreads is the effective concurrency of the Memory-mode
	// eviction engine at the NVM WPQ (hardware-generated writebacks do
	// not contend like 48 application threads; they arrive from the iMC's
	// eviction path).
	WritebackThreads int
	// TagCheckOverhead is the extra latency of a Memory-mode DRAM cache
	// hit over a native DRAM access (metadata check in the iMC).
	TagCheckOverhead units.Duration
	// MissOverlap discounts the miss path in the Memory-mode effective
	// read capability: fills overlap partially with in-flight hits, so a
	// miss does not serialize its full NVM service time.
	MissOverlap float64

	// NUMA applies cross-socket penalties when the accessed memory is
	// remote (zero value = local, no penalty). The paper's experiments
	// are all local; see numa.go.
	NUMA NUMA
}

// New builds a memory system for the socket in the given mode with
// defaults for the Memory-mode parameters.
func New(sock *platform.Socket, mode Mode) *System {
	return &System{
		Socket:           sock,
		Mode:             mode,
		WritebackThreads: 8,
		TagCheckOverhead: units.Nanoseconds(25),
		MissOverlap:      0.6,
	}
}

// Resource identifies what bound a phase in the solver, for the paper's
// bottleneck classification.
type Resource string

const (
	BoundNone      Resource = "none"
	BoundDRAMRead  Resource = "dram-read"
	BoundDRAMWrite Resource = "dram-write"
	BoundNVMRead   Resource = "nvm-read"
	BoundNVMWrite  Resource = "nvm-write"
	BoundWriteback Resource = "nvm-writeback"
	BoundLatency   Resource = "latency"
)

// EpochResult reports the solved behaviour of one phase on one
// configuration.
type EpochResult struct {
	// Mult is the time-dilation multiplier versus the DRAM baseline
	// (>= 1 on NVM configs; == 1 when nothing saturates).
	Mult float64
	// BoundBy names the binding resource.
	BoundBy Resource
	// HitRate is the Memory-mode DRAM cache hit rate (1 for DRAMOnly,
	// 0 for UncachedNVM).
	HitRate float64
	// Achieved traffic by device and direction.
	DRAMRead, DRAMWrite units.Bandwidth
	NVMRead, NVMWrite   units.Bandwidth
	// Diagnostic multipliers.
	BWMult, LatMult float64
}

// TotalNVM returns achieved NVM traffic.
func (e EpochResult) TotalNVM() units.Bandwidth { return e.NVMRead + e.NVMWrite }

// TotalDRAM returns achieved DRAM traffic.
func (e EpochResult) TotalDRAM() units.Bandwidth { return e.DRAMRead + e.DRAMWrite }

// nvmCombined applies the Optane mixed read/write interference rule:
// the device multiplier is the larger utilization plus half the smaller.
func nvmCombined(ur, uw float64) float64 {
	if ur < uw {
		ur, uw = uw, ur
	}
	return ur + 0.5*uw
}

// SolveEpoch computes the phase's behaviour at the given application
// thread count. Demands in ph are taken as already scaled to that
// concurrency by the caller (the workload runner owns the scaling curve).
func (s *System) SolveEpoch(ph Phase, threads int) EpochResult {
	switch s.Mode {
	case DRAMOnly:
		return s.solveDRAM(ph, threads)
	case UncachedNVM:
		return s.solveUncached(ph, threads)
	case CachedNVM:
		return s.solveCached(ph, threads)
	default:
		panic(fmt.Sprintf("memsys: SolveEpoch on mode %v (use SolvePlaced)", s.Mode))
	}
}

func (s *System) solveDRAM(ph Phase, threads int) EpochResult {
	dram := s.Socket.DRAM
	rd, wd := float64(ph.ReadBW), float64(ph.WriteBW)
	ur := units.Ratio(rd, float64(s.NUMA.capBW(ph.ReadMix.ReadCap(dram, threads))))
	uw := units.Ratio(wd, float64(s.NUMA.capBW(dram.WriteCapability(ph.WritePattern, threads))))
	m, bound := 1.0, BoundNone
	if ur > m {
		m, bound = ur, BoundDRAMRead
	}
	if uw > m {
		m, bound = uw, BoundDRAMWrite
	}
	return EpochResult{
		Mult: m, BoundBy: bound, HitRate: 1,
		DRAMRead:  units.Bandwidth(rd / m),
		DRAMWrite: units.Bandwidth(wd / m),
		BWMult:    m, LatMult: 1,
	}
}

func (s *System) solveUncached(ph Phase, threads int) EpochResult {
	nvm, dram := s.Socket.NVM, s.Socket.DRAM
	rd, wd := float64(ph.ReadBW), float64(ph.WriteBW)
	ur := units.Ratio(rd, float64(s.NUMA.capBW(ph.ReadMix.ReadCap(nvm, threads))))
	uw := units.Ratio(wd, float64(s.NUMA.capBW(nvm.WriteCapability(ph.WritePattern, threads))))
	bw := nvmCombined(ur, uw)

	// The latency reference is always the local-DRAM baseline; only the
	// accessed memory pays the NUMA hop.
	latRatio := units.Ratio(float64(s.NUMA.capLatency(ph.ReadMix.Latency(nvm))), float64(ph.ReadMix.Latency(dram)))
	lat := 1 + ph.LatencyBound*(latRatio-1)

	m, bound := 1.0, BoundNone
	if bw > m {
		m = bw
		if ur >= uw {
			bound = BoundNVMRead
		} else {
			bound = BoundNVMWrite
		}
	}
	if lat > m {
		m, bound = lat, BoundLatency
	}
	return EpochResult{
		Mult: m, BoundBy: bound, HitRate: 0,
		NVMRead:  units.Bandwidth(rd / m),
		NVMWrite: units.Bandwidth(wd / m),
		BWMult:   bw, LatMult: lat,
	}
}

// writebackPattern maps an application store pattern to the pattern its
// Memory-mode eviction stream presents to the NVM: the DRAM cache
// aggregates dirty lines over time, so evictions are one step more
// spatially clustered than the stores that produced them.
func writebackPattern(p memdev.Pattern) memdev.Pattern {
	switch p {
	case memdev.Sequential, memdev.Stencil:
		return memdev.Sequential
	case memdev.Strided:
		return memdev.Stencil
	case memdev.Transpose, memdev.Gather:
		return memdev.Strided
	case memdev.Random:
		return memdev.Gather
	default:
		return p
	}
}

func (s *System) solveCached(ph Phase, threads int) EpochResult {
	nvm, dram := s.Socket.NVM, s.Socket.DRAM
	rd, wd := float64(ph.ReadBW), float64(ph.WriteBW)

	hm := dramcache.HitModel{Capacity: dram.Capacity}
	// Conflict pressure grows with concurrency: more threads interleave
	// more distinct streams into the direct-mapped cache (the Fig 6
	// observation that ScaLAPACK contends harder on cached than
	// uncached NVM at high thread counts).
	threadBoost := 1.0
	if threads > platformCores {
		threadBoost += 0.35 * float64(threads-platformCores) / float64(platformCores)
	}
	h := hm.RateParams(ph.WorkingSet,
		ph.ReadMix.ConflictSensitivity()*ph.aliasFactor()*threadBoost,
		ph.ReadMix.SpatialLocality())

	fills := (1 - h) * (rd + wd)

	// Effective read capability: hits at DRAM speed, misses at NVM speed
	// (harmonic blend — time per byte adds), with misses discounted by
	// MissOverlap because fills overlap in-flight hits.
	rDRAM := float64(s.NUMA.capBW(ph.ReadMix.ReadCap(dram, threads)))
	rNVM := float64(s.NUMA.capBW(ph.ReadMix.ReadCap(nvm, threads)))
	var reff float64
	if rDRAM > 0 && rNVM > 0 {
		reff = 1 / (h/rDRAM + (1-h)*s.MissOverlap/rNVM)
	}
	ur := units.Ratio(rd, reff)

	// Demand writes land in DRAM; fills also consume DRAM write
	// bandwidth. Fills stream line-sized blocks: treat them as strided.
	dramW := float64(dram.WriteCapability(memdev.Strided, threads))
	uDRAMw := units.Ratio(wd+fills, dramW)

	// Dirty evictions go to NVM through the writeback engine: the dirty
	// share of the miss-driven eviction stream, bounded by the demand
	// store rate (a line is written back at most ~once per store burst,
	// with modest full-line amplification).
	wb := fills * dramcache.DirtyFraction(ph.writeShare())
	if limit := wd * 1.2; wb > limit {
		wb = limit
	}
	wbCap := float64(s.NUMA.capBW(nvm.WriteCapability(writebackPattern(ph.WritePattern), s.WritebackThreads)))
	uWB := units.Ratio(wb, wbCap)

	// Miss fills read from NVM. Unlike application traffic, fills and
	// writebacks are hardware-scheduled and interleave efficiently, so
	// the NVM-side multiplier is the plain maximum (no mixed-traffic
	// coupling term).
	uNVMr := units.Ratio(fills, rNVM)
	uNVM := uNVMr
	if uWB > uNVM {
		uNVM = uWB
	}

	// Latency path: hits pay the tag-check overhead, misses the NVM
	// latency.
	latDRAM := float64(ph.ReadMix.Latency(dram))
	latNVM := float64(s.NUMA.capLatency(ph.ReadMix.Latency(nvm)))
	latEff := h*(latDRAM+float64(s.TagCheckOverhead)) + (1-h)*(latNVM+float64(s.TagCheckOverhead))
	lat := 1 + ph.LatencyBound*(units.Ratio(latEff, latDRAM)-1)

	m, bound := 1.0, BoundNone
	if ur > m {
		m, bound = ur, BoundDRAMRead
	}
	if uDRAMw > m {
		m, bound = uDRAMw, BoundDRAMWrite
	}
	if uNVM > m {
		m = uNVM
		if uNVMr >= uWB {
			bound = BoundNVMRead
		} else {
			bound = BoundWriteback
		}
	}
	if lat > m {
		m, bound = lat, BoundLatency
	}
	return EpochResult{
		Mult: m, BoundBy: bound, HitRate: h,
		DRAMRead:  units.Bandwidth(rd / m),
		DRAMWrite: units.Bandwidth((wd + fills) / m),
		NVMRead:   units.Bandwidth(fills / m),
		NVMWrite:  units.Bandwidth(wb / m),
		BWMult:    maxf(ur, uDRAMw, uNVM), LatMult: lat,
	}
}

func maxf(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Split describes how a phase's traffic divides between DRAM and NVM
// under per-structure placement: DRAMReadFrac of the reads and
// DRAMWriteFrac of the writes hit structures placed in DRAM.
type Split struct {
	DRAMReadFrac  float64
	DRAMWriteFrac float64
}

// SolvePlaced solves a phase under AppDirect with per-structure
// placement. The split comes from the placement optimizer
// (internal/placement) via the per-structure traffic profile.
func (s *System) SolvePlaced(ph Phase, threads int, split Split) EpochResult {
	nvm, dram := s.Socket.NVM, s.Socket.DRAM
	rd, wd := float64(ph.ReadBW), float64(ph.WriteBW)
	rdD, rdN := rd*split.DRAMReadFrac, rd*(1-split.DRAMReadFrac)
	wdD, wdN := wd*split.DRAMWriteFrac, wd*(1-split.DRAMWriteFrac)

	uRd := units.Ratio(rdD, float64(ph.ReadMix.ReadCap(dram, threads)))
	uWd := units.Ratio(wdD, float64(dram.WriteCapability(ph.WritePattern, threads)))
	ur := units.Ratio(rdN, float64(ph.ReadMix.ReadCap(nvm, threads)))
	uw := units.Ratio(wdN, float64(nvm.WriteCapability(ph.WritePattern, threads)))
	uNVM := nvmCombined(ur, uw)

	latRatio := units.Ratio(float64(ph.ReadMix.Latency(nvm)), float64(ph.ReadMix.Latency(dram)))
	nvmReadShare := units.Ratio(rdN, rd)
	lat := 1 + ph.LatencyBound*nvmReadShare*(latRatio-1)

	m, bound := 1.0, BoundNone
	if uRd > m {
		m, bound = uRd, BoundDRAMRead
	}
	if uWd > m {
		m, bound = uWd, BoundDRAMWrite
	}
	if uNVM > m {
		m = uNVM
		if ur >= uw {
			bound = BoundNVMRead
		} else {
			bound = BoundNVMWrite
		}
	}
	if lat > m {
		m, bound = lat, BoundLatency
	}
	return EpochResult{
		Mult: m, BoundBy: bound, HitRate: split.DRAMReadFrac,
		DRAMRead:  units.Bandwidth(rdD / m),
		DRAMWrite: units.Bandwidth(wdD / m),
		NVMRead:   units.Bandwidth(rdN / m),
		NVMWrite:  units.Bandwidth(wdN / m),
		BWMult:    maxf(uRd, uWd, uNVM), LatMult: lat,
	}
}
