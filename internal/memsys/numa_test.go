package memsys

import (
	"testing"

	"repro/internal/memdev"
	"repro/internal/units"
)

func TestDefaultNUMA(t *testing.T) {
	n := DefaultNUMA()
	if !n.Remote || n.UPIBandwidth != units.GBps(34) {
		t.Errorf("defaults: %+v", n)
	}
}

func TestNUMACapBW(t *testing.T) {
	n := DefaultNUMA()
	// High local capability is clamped to the UPI link.
	if got := n.capBW(units.GBps(100)); got != units.GBps(34) {
		t.Errorf("capBW(100) = %v, want 34 GB/s", got)
	}
	// Low local capability only pays the derate.
	if got := n.capBW(units.GBps(10)); got != units.GBps(8.5) {
		t.Errorf("capBW(10) = %v, want 8.5 GB/s", got)
	}
	// Local (zero value) is a no-op.
	local := NUMA{}
	if got := local.capBW(units.GBps(100)); got != units.GBps(100) {
		t.Errorf("local capBW changed: %v", got)
	}
}

func TestNUMACapLatency(t *testing.T) {
	n := DefaultNUMA()
	if got := n.capLatency(units.Nanoseconds(100)); got != units.Nanoseconds(170) {
		t.Errorf("capLatency = %v", got)
	}
	if got := (NUMA{}).capLatency(units.Nanoseconds(100)); got != units.Nanoseconds(100) {
		t.Errorf("local latency changed: %v", got)
	}
}

// Remote NVM is strictly worse than local NVM — the reason the paper
// pins to the local socket.
func TestRemoteUncachedSlower(t *testing.T) {
	local := New(sock(), UncachedNVM)
	remote := local.WithNUMA(DefaultNUMA())
	ph := Phase{
		Name: "lookups", Share: 1,
		ReadBW: units.GBps(67), WriteBW: units.MBps(10),
		ReadMix: Pure(memdev.Random), WritePattern: memdev.Sequential,
		WorkingSet: 70 * units.GiB,
	}
	lm := local.SolveEpoch(ph, 48).Mult
	rm := remote.SolveEpoch(ph, 48).Mult
	if rm <= lm {
		t.Errorf("remote NVM mult %v should exceed local %v", rm, lm)
	}
}

// Remote DRAM saturates at the UPI bandwidth for high-demand streams.
func TestRemoteDRAMCapped(t *testing.T) {
	local := New(sock(), DRAMOnly)
	remote := local.WithNUMA(DefaultNUMA())
	ph := Phase{
		Name: "stream", Share: 1,
		ReadBW: units.GBps(80), WriteBW: 0,
		ReadMix: Pure(memdev.Sequential), WritePattern: memdev.Sequential,
		WorkingSet: 10 * units.GiB,
	}
	lr := local.SolveEpoch(ph, 48)
	rr := remote.SolveEpoch(ph, 48)
	if lr.Mult > 1.01 {
		t.Errorf("local 80 GB/s stream should be unconstrained, mult %v", lr.Mult)
	}
	if got := rr.DRAMRead.GBpsValue(); got > 34.5 {
		t.Errorf("remote achieved read %v exceeds UPI", got)
	}
	if rr.Mult < 2.0 {
		t.Errorf("remote mult = %v, want >= 2 (80 GB/s over a 34 GB/s link)", rr.Mult)
	}
}

// WithNUMA must not mutate the original system.
func TestWithNUMACopies(t *testing.T) {
	local := New(sock(), UncachedNVM)
	_ = local.WithNUMA(DefaultNUMA())
	if local.NUMA.Remote {
		t.Error("WithNUMA mutated the receiver")
	}
}

// Remote cached-NVM also degrades (both the fill path and the writeback
// path cross the link).
func TestRemoteCachedSlower(t *testing.T) {
	local := New(sock(), CachedNVM)
	remote := local.WithNUMA(DefaultNUMA())
	ph := Phase{
		Name: "smooth", Share: 1,
		ReadBW: units.GBps(80), WriteBW: units.GBps(5),
		ReadMix: Mix(
			MixComponent{memdev.Strided, 0.55},
			MixComponent{memdev.Gather, 0.45},
		),
		WritePattern: memdev.Gather,
		WorkingSet:   units.GB(0.75 * 96),
	}
	lm := local.SolveEpoch(ph, 48).Mult
	rm := remote.SolveEpoch(ph, 48).Mult
	if rm <= lm {
		t.Errorf("remote cached mult %v should exceed local %v", rm, lm)
	}
}
