// Package memsys is the heart of the reproduction: it models the three
// main-memory configurations the paper evaluates — DRAM-only, cached-NVM
// (Memory mode) and uncached-NVM (AppDirect) — plus the write-aware
// per-structure placement of Section V-B, and solves each application
// phase for its achieved performance and per-device traffic.
//
// The solver is a bottleneck (roofline-style) epoch model. A phase
// declares the read/write bandwidth it would sustain on unconstrained
// DRAM, its access-pattern mix, working set and latency sensitivity; the
// solver computes the phase's time-dilation multiplier on a given memory
// configuration as the maximum utilization across the resources involved
// (DRAM read/write, NVM read/write, the Memory-mode writeback path), with
// the paper's two NVM-specific couplings:
//
//   - write throttling: reads and writes of a phase share one multiplier,
//     so a saturated NVM write path drags read throughput down with it
//     (the SuperLU phase-1 collapse of Section IV-C);
//
//   - mixed read/write interference: concurrent read and write streams on
//     the Optane controller degrade each other, modelled by adding half
//     of the smaller utilization to the larger one.
package memsys

import (
	"fmt"

	"repro/internal/memdev"
	"repro/internal/units"
)

// MixComponent weights one access pattern within a phase's stream.
type MixComponent struct {
	Pattern memdev.Pattern
	Weight  float64
}

// PatternMix describes a phase's read stream as a weighted combination of
// basic patterns (e.g. a CSR SpMV is part unit-stride over values, part
// gather over the vector).
type PatternMix []MixComponent

// Mix builds a PatternMix from alternating pattern/weight pairs and
// normalizes the weights to sum to one.
func Mix(parts ...MixComponent) PatternMix {
	var total float64
	for _, c := range parts {
		total += c.Weight
	}
	if total <= 0 {
		return PatternMix{{Pattern: memdev.Sequential, Weight: 1}}
	}
	out := make(PatternMix, len(parts))
	for i, c := range parts {
		out[i] = MixComponent{Pattern: c.Pattern, Weight: c.Weight / total}
	}
	return out
}

// Pure is the single-pattern mix.
func Pure(p memdev.Pattern) PatternMix {
	return PatternMix{{Pattern: p, Weight: 1}}
}

// Validate checks the mix is non-empty with valid patterns and positive
// weights summing to ~1.
func (m PatternMix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("memsys: empty pattern mix")
	}
	var total float64
	for _, c := range m {
		if !c.Pattern.Valid() {
			return fmt.Errorf("memsys: invalid pattern %v in mix", c.Pattern)
		}
		if c.Weight < 0 {
			return fmt.Errorf("memsys: negative weight %v in mix", c.Weight)
		}
		total += c.Weight
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("memsys: mix weights sum to %v, want 1", total)
	}
	return nil
}

// ReadCap returns the harmonic-blend read capability of dev for the mix:
// time-per-byte is the weighted sum of each component's time-per-byte.
func (m PatternMix) ReadCap(dev *memdev.Device, threads int) units.Bandwidth {
	var tpb float64 // seconds per byte
	for _, c := range m {
		cap := float64(dev.ReadCapability(c.Pattern, threads))
		if cap <= 0 {
			return 0
		}
		tpb += c.Weight / cap
	}
	if tpb <= 0 {
		return 0
	}
	return units.Bandwidth(1 / tpb)
}

// Latency returns the weighted mean exposed read latency of dev for the
// mix.
func (m PatternMix) Latency(dev *memdev.Device) units.Duration {
	var l float64
	for _, c := range m {
		l += c.Weight * float64(dev.ReadLatency(c.Pattern))
	}
	return units.Duration(l)
}

// ConflictSensitivity returns the weighted DRAM-cache conflict
// sensitivity of the mix.
func (m PatternMix) ConflictSensitivity() float64 {
	var s float64
	for _, c := range m {
		s += c.Weight * c.Pattern.ConflictSensitivity()
	}
	return s
}

// SpatialLocality returns the weighted 256-byte-block locality of the mix.
func (m PatternMix) SpatialLocality() float64 {
	var s float64
	for _, c := range m {
		s += c.Weight * c.Pattern.SpatialLocality()
	}
	return s
}

// Dominant returns the heaviest-weighted pattern in the mix.
func (m PatternMix) Dominant() memdev.Pattern {
	best, bw := memdev.Sequential, -1.0
	for _, c := range m {
		if c.Weight > bw {
			best, bw = c.Pattern, c.Weight
		}
	}
	return best
}
