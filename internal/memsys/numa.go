package memsys

import (
	"repro/internal/units"
)

// NUMA describes cross-socket access penalties. The paper pins every
// experiment to the local socket precisely because remote accesses
// through UPI are severely penalized ([9], [12], [21]); this extension
// models that exclusion so it can be quantified: remote traffic is
// capped by the UPI link bandwidth and pays the cross-socket latency.
type NUMA struct {
	// Remote marks the memory as attached to the other socket.
	Remote bool
	// UPIBandwidth is the effective cross-socket bandwidth
	// (Table I: UPI at 10.4 GT/s; ~34 GB/s effective for memory
	// traffic).
	UPIBandwidth units.Bandwidth
	// ExtraLatency is the added cross-socket hop latency.
	ExtraLatency units.Duration
	// Derate scales device capability even under the UPI cap (protocol
	// overhead of remote snoops).
	Derate float64
}

// DefaultNUMA returns the Purley cross-socket penalty model.
func DefaultNUMA() NUMA {
	return NUMA{
		Remote:       true,
		UPIBandwidth: units.GBps(34),
		ExtraLatency: units.Nanoseconds(70),
		Derate:       0.85,
	}
}

// capBW applies the NUMA penalty to a device capability.
func (n NUMA) capBW(local units.Bandwidth) units.Bandwidth {
	if !n.Remote {
		return local
	}
	v := units.Bandwidth(float64(local) * n.Derate)
	if n.UPIBandwidth > 0 && v > n.UPIBandwidth {
		v = n.UPIBandwidth
	}
	return v
}

// capLatency applies the NUMA penalty to an access latency.
func (n NUMA) capLatency(local units.Duration) units.Duration {
	if !n.Remote {
		return local
	}
	return local + n.ExtraLatency
}

// WithNUMA returns a copy of the system with the given NUMA placement
// (e.g. numactl binding the application to the far socket's memory).
func (s *System) WithNUMA(n NUMA) *System {
	cp := *s
	cp.NUMA = n
	return &cp
}
