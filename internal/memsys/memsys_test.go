package memsys

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/memdev"
	"repro/internal/platform"
	"repro/internal/units"
)

func sock() *platform.Socket { return platform.NewPurley().Socket(0) }

func lowBWPhase() Phase {
	return Phase{
		Name: "low", Share: 1,
		ReadBW: units.MBps(25), WriteBW: units.MBps(14),
		ReadMix: Pure(memdev.Gather), WritePattern: memdev.Gather,
		WorkingSet: 10 * units.GiB,
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		DRAMOnly: "DRAM", CachedNVM: "cached-NVM", UncachedNVM: "uncached-NVM", Placed: "write-aware",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q want %q", m, m.String(), s)
		}
	}
	if Mode(42).String() != "mode(42)" {
		t.Errorf("invalid mode string: %s", Mode(42))
	}
	if len(Modes()) != 3 {
		t.Errorf("Modes() = %v", Modes())
	}
}

func TestMixNormalization(t *testing.T) {
	m := Mix(
		MixComponent{memdev.Sequential, 3},
		MixComponent{memdev.Gather, 1},
	)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[0].Weight != 0.75 || m[1].Weight != 0.25 {
		t.Errorf("weights = %v", m)
	}
	if m.Dominant() != memdev.Sequential {
		t.Errorf("dominant = %v", m.Dominant())
	}
}

func TestMixDegenerate(t *testing.T) {
	m := Mix() // empty: falls back to sequential
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Dominant() != memdev.Sequential {
		t.Error("empty mix should default to sequential")
	}
}

func TestMixValidateErrors(t *testing.T) {
	if err := (PatternMix{}).Validate(); err == nil {
		t.Error("empty mix should fail validation")
	}
	bad := PatternMix{{Pattern: memdev.Pattern(99), Weight: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid pattern should fail validation")
	}
	unnorm := PatternMix{{Pattern: memdev.Sequential, Weight: 0.5}}
	if err := unnorm.Validate(); err == nil {
		t.Error("non-unit weights should fail validation")
	}
}

func TestMixReadCapHarmonic(t *testing.T) {
	s := sock()
	seq := Pure(memdev.Sequential).ReadCap(s.NVM, 48)
	rnd := Pure(memdev.Random).ReadCap(s.NVM, 48)
	mix := Mix(
		MixComponent{memdev.Sequential, 0.5},
		MixComponent{memdev.Random, 0.5},
	).ReadCap(s.NVM, 48)
	want := 1 / (0.5/float64(seq) + 0.5/float64(rnd))
	if math.Abs(float64(mix)-want)/want > 1e-9 {
		t.Errorf("harmonic blend = %v, want %v", mix, want)
	}
	if mix >= seq || mix <= rnd {
		t.Errorf("blend %v should be between %v and %v", mix, rnd, seq)
	}
}

func TestMixLatencyWeighted(t *testing.T) {
	s := sock()
	m := Mix(
		MixComponent{memdev.Sequential, 0.5},
		MixComponent{memdev.Random, 0.5},
	)
	l := m.Latency(s.NVM)
	seq, rnd := s.NVM.ReadLatency(memdev.Sequential), s.NVM.ReadLatency(memdev.Random)
	want := 0.5*float64(seq) + 0.5*float64(rnd)
	if math.Abs(float64(l)-want) > 1e-15 {
		t.Errorf("mix latency = %v, want %v", l, units.Duration(want))
	}
}

func TestPhaseValidate(t *testing.T) {
	good := lowBWPhase()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Share = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("share > 1 should fail")
	}
	bad = good
	bad.ReadBW = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative bandwidth should fail")
	}
	bad = good
	bad.LatencyBound = 2
	if err := bad.Validate(); err == nil {
		t.Error("latency bound > 1 should fail")
	}
	bad = good
	bad.WritePattern = memdev.Pattern(50)
	if err := bad.Validate(); err == nil {
		t.Error("bad write pattern should fail")
	}
}

func TestDRAMOnlyUnconstrained(t *testing.T) {
	sys := New(sock(), DRAMOnly)
	r := sys.SolveEpoch(lowBWPhase(), 48)
	if r.Mult != 1 || r.BoundBy != BoundNone {
		t.Errorf("low-BW phase on DRAM: mult=%v bound=%v", r.Mult, r.BoundBy)
	}
	if r.NVMRead != 0 || r.NVMWrite != 0 {
		t.Error("DRAM-only must produce no NVM traffic")
	}
	if r.HitRate != 1 {
		t.Errorf("DRAM-only hit rate = %v", r.HitRate)
	}
}

func TestDRAMOnlySaturates(t *testing.T) {
	sys := New(sock(), DRAMOnly)
	ph := lowBWPhase()
	ph.ReadBW = units.GBps(500) // far beyond any DRAM capability
	r := sys.SolveEpoch(ph, 48)
	if r.Mult <= 1 || r.BoundBy != BoundDRAMRead {
		t.Errorf("oversubscribed DRAM read: mult=%v bound=%v", r.Mult, r.BoundBy)
	}
	// Achieved read equals capability.
	wantCap := ph.ReadMix.ReadCap(sock().DRAM, 48)
	if math.Abs(r.DRAMRead.GBpsValue()-wantCap.GBpsValue()) > 0.01 {
		t.Errorf("achieved %v, capability %v", r.DRAMRead, wantCap)
	}
}

// The insensitive tier (paper Table III: HACC 1.01x, Laghos 1.27x): low
// bandwidth demand slows little on uncached NVM.
func TestUncachedInsensitiveTier(t *testing.T) {
	sys := New(sock(), UncachedNVM)
	r := sys.SolveEpoch(lowBWPhase(), 48)
	if r.Mult > 1.05 {
		t.Errorf("low-BW phase slowed %vx on uncached NVM, want ~1", r.Mult)
	}
}

// The scaled tier: a read-heavy random workload (XSBench-like, ~67 GB/s
// demand) slows by roughly the DRAM/NVM capability gap (~4x).
func TestUncachedScaledTier(t *testing.T) {
	sys := New(sock(), UncachedNVM)
	ph := Phase{
		Name: "lookups", Share: 1,
		ReadBW: units.GBps(67), WriteBW: units.MBps(10),
		ReadMix: Pure(memdev.Random), WritePattern: memdev.Sequential,
		WorkingSet: 100 * units.GiB,
	}
	r := sys.SolveEpoch(ph, 48)
	if r.Mult < 3.4 || r.Mult > 5.0 {
		t.Errorf("XSBench-like slowdown = %v, want ~4.2", r.Mult)
	}
	if r.BoundBy != BoundNVMRead {
		t.Errorf("bound by %v, want nvm-read", r.BoundBy)
	}
	// Achieved NVM read traffic should land near the paper's 16 GB/s.
	if got := r.NVMRead.GBpsValue(); got < 13 || got > 19 {
		t.Errorf("achieved NVM read = %v GB/s, want ~16", got)
	}
}

// The bottlenecked tier: write-heavy transpose traffic (FFT-like) slows
// far beyond the 3x bandwidth gap — the write-throttling effect.
func TestUncachedBottleneckedTier(t *testing.T) {
	sys := New(sock(), UncachedNVM)
	ph := Phase{
		Name: "transpose", Share: 1,
		ReadBW: units.GBps(54), WriteBW: units.GBps(35),
		ReadMix: Pure(memdev.Transpose), WritePattern: memdev.Transpose,
		WorkingSet: 100 * units.GiB,
	}
	r := sys.SolveEpoch(ph, 48)
	if r.Mult < 10 {
		t.Errorf("FFT-like slowdown = %v, want >> 3 (write throttling)", r.Mult)
	}
	if r.BoundBy != BoundNVMWrite {
		t.Errorf("bound by %v, want nvm-write", r.BoundBy)
	}
	// Coupling: achieved read collapses along with writes (SuperLU
	// phase-1 behaviour: 54 -> ~4 GB/s).
	if got := r.NVMRead.GBpsValue(); got > 6 {
		t.Errorf("achieved read %v GB/s should be throttled below 6", got)
	}
}

// Write throttling threshold: a phase whose write demand stays under the
// NVM write capability does not trigger the collapse (Laghos phase 1 at
// 1.3 GB/s average, peak < 2 GB/s).
func TestUncachedBelowWriteThreshold(t *testing.T) {
	sys := New(sock(), UncachedNVM)
	ph := Phase{
		Name: "assemble", Share: 1,
		ReadBW: units.GBps(3.1), WriteBW: units.GBps(1.0),
		ReadMix: Pure(memdev.Stencil), WritePattern: memdev.Sequential,
		WorkingSet: 20 * units.GiB,
	}
	r := sys.SolveEpoch(ph, 48)
	if r.Mult > 1.4 {
		t.Errorf("below-threshold phase slowed %vx", r.Mult)
	}
}

// Latency-bound phases slow by the latency ratio even at negligible
// bandwidth.
func TestUncachedLatencyBound(t *testing.T) {
	sys := New(sock(), UncachedNVM)
	ph := lowBWPhase()
	ph.LatencyBound = 0.5
	ph.ReadMix = Pure(memdev.Random)
	r := sys.SolveEpoch(ph, 48)
	// 1 + 0.5*(304/80 - 1) = 2.4
	if r.Mult < 2.0 || r.Mult > 2.8 {
		t.Errorf("latency-bound mult = %v, want ~2.4", r.Mult)
	}
	if r.BoundBy != BoundLatency {
		t.Errorf("bound by %v, want latency", r.BoundBy)
	}
}

// Memory mode with a fitting working set stays near DRAM performance for
// well-behaved patterns (Fig 2: most apps within 10%).
func TestCachedNearDRAMWhenFits(t *testing.T) {
	sys := New(sock(), CachedNVM)
	ph := Phase{
		Name: "lookups", Share: 1,
		ReadBW: units.GBps(67), WriteBW: units.MBps(10),
		ReadMix: Pure(memdev.Random), WritePattern: memdev.Sequential,
		WorkingSet: units.GB(0.6 * 96),
	}
	r := sys.SolveEpoch(ph, 48)
	if r.Mult > 1.10 {
		t.Errorf("fitting random workload slowed %vx on cached-NVM, want <= 1.10", r.Mult)
	}
	if r.HitRate < 0.9 {
		t.Errorf("hit rate = %v", r.HitRate)
	}
}

// Hypre-like stencil at high occupancy loses ~25% on cached-NVM from
// conflict misses (Fig 4: read bandwidth 82.5 -> 59.5 GB/s).
func TestCachedConflictLoss(t *testing.T) {
	sys := New(sock(), CachedNVM)
	ph := Phase{
		Name: "smooth", Share: 1,
		ReadBW: units.GBps(82.5), WriteBW: units.GBps(5.7),
		ReadMix: Mix(
			MixComponent{memdev.Stencil, 0.7},
			MixComponent{memdev.Gather, 0.3},
		),
		WritePattern: memdev.Gather,
		WorkingSet:   units.GB(0.85 * 96),
	}
	r := sys.SolveEpoch(ph, 48)
	if r.Mult < 1.10 || r.Mult > 1.45 {
		t.Errorf("Hypre-like cached mult = %v, want ~1.28", r.Mult)
	}
	// Replacement traffic: NVM reads visible, DRAM writes above demand.
	if r.NVMRead == 0 {
		t.Error("cached mode with misses must show NVM read traffic")
	}
	if r.DRAMWrite.GBpsValue() <= 5.7/r.Mult {
		t.Error("cached mode must add fill traffic to DRAM writes")
	}
}

// Beyond-DRAM problems: cached-NVM degrades but still beats uncached
// (Fig 3: ~2x speedup at 2.9-4.4x footprint).
func TestCachedBeatsUncachedBeyondCapacity(t *testing.T) {
	cached := New(sock(), CachedNVM)
	uncached := New(sock(), UncachedNVM)
	ph := Phase{
		Name: "sweep", Share: 1,
		ReadBW: units.GBps(70), WriteBW: units.GBps(18),
		ReadMix: Pure(memdev.Stencil), WritePattern: memdev.Gather,
		WorkingSet: units.GB(4.4 * 96),
	}
	rc := cached.SolveEpoch(ph, 48)
	ru := uncached.SolveEpoch(ph, 48)
	if rc.Mult >= ru.Mult {
		t.Errorf("cached (%v) should beat uncached (%v) at 4.4x footprint", rc.Mult, ru.Mult)
	}
	speedup := ru.Mult / rc.Mult
	if speedup < 1.4 || speedup > 3.5 {
		t.Errorf("cached speedup over uncached = %v, want ~2", speedup)
	}
}

// SolvePlaced: keeping the write-hot traffic in DRAM recovers most of
// the DRAM performance (Fig 12) while read traffic scales from NVM.
func TestPlacedWriteAware(t *testing.T) {
	sys := New(sock(), Placed)
	ph := Phase{
		Name: "update", Share: 1,
		ReadBW: units.GBps(30), WriteBW: units.GBps(5.6),
		ReadMix: Pure(memdev.Strided), WritePattern: memdev.Strided,
		WorkingSet: 50 * units.GiB,
	}
	// Write-aware: all writes to DRAM, reads stay on NVM.
	writeAware := sys.SolvePlaced(ph, 48, Split{DRAMReadFrac: 0.1, DRAMWriteFrac: 0.95})
	// Uncached equivalent.
	uncached := New(sock(), UncachedNVM).SolveEpoch(ph, 48)
	if writeAware.Mult >= uncached.Mult {
		t.Errorf("write-aware (%v) should beat uncached (%v)", writeAware.Mult, uncached.Mult)
	}
	if writeAware.Mult > 1.6 {
		t.Errorf("write-aware mult = %v, want near DRAM (1)", writeAware.Mult)
	}
	// Read-aware control (paper's validation): placing read-hot data in
	// DRAM instead leaves the write bottleneck: ~uncached performance.
	readAware := sys.SolvePlaced(ph, 48, Split{DRAMReadFrac: 0.95, DRAMWriteFrac: 0.1})
	if readAware.Mult < uncached.Mult*0.7 {
		t.Errorf("read-aware placement (%v) should stay near uncached (%v)", readAware.Mult, uncached.Mult)
	}
}

func TestSolveEpochPanicsOnPlaced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SolveEpoch on Placed mode should panic")
		}
	}()
	New(sock(), Placed).SolveEpoch(lowBWPhase(), 48)
}

func TestEpochResultTotals(t *testing.T) {
	e := EpochResult{DRAMRead: 1, DRAMWrite: 2, NVMRead: 3, NVMWrite: 4}
	if e.TotalDRAM() != 3 || e.TotalNVM() != 7 {
		t.Error("totals wrong")
	}
}

func TestNVMCombinedRule(t *testing.T) {
	if got := nvmCombined(4, 2); got != 5 {
		t.Errorf("nvmCombined(4,2) = %v, want 5", got)
	}
	if got := nvmCombined(2, 4); got != 5 {
		t.Errorf("nvmCombined(2,4) = %v, want 5 (symmetric)", got)
	}
	if got := nvmCombined(3, 0); got != 3 {
		t.Errorf("nvmCombined(3,0) = %v, want 3", got)
	}
}

// Property: the multiplier never falls below 1 and is monotone in demand.
func TestMultMonotoneProperty(t *testing.T) {
	sys := New(sock(), UncachedNVM)
	f := func(rRaw, wRaw uint16) bool {
		r1 := units.Bandwidth(float64(rRaw) * 1e6)
		w1 := units.Bandwidth(float64(wRaw) * 1e6)
		ph := lowBWPhase()
		ph.ReadBW, ph.WriteBW = r1, w1
		m1 := sys.SolveEpoch(ph, 48).Mult
		ph.ReadBW *= 2
		ph.WriteBW *= 2
		m2 := sys.SolveEpoch(ph, 48).Mult
		return m1 >= 1 && m2 >= m1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: achieved traffic never exceeds demand on any mode.
func TestAchievedBelowDemandProperty(t *testing.T) {
	systems := []*System{New(sock(), DRAMOnly), New(sock(), CachedNVM), New(sock(), UncachedNVM)}
	f := func(rRaw, wRaw uint16, wsRaw uint8) bool {
		ph := Phase{
			Name: "p", Share: 1,
			ReadBW:  units.Bandwidth(float64(rRaw) * 1e7),
			WriteBW: units.Bandwidth(float64(wRaw) * 1e7),
			ReadMix: Pure(memdev.Strided), WritePattern: memdev.Strided,
			WorkingSet: units.Bytes(wsRaw) * 2 * units.GiB,
		}
		for _, sys := range systems {
			e := sys.SolveEpoch(ph, 48)
			// In cached mode NVMRead is fill traffic (it includes
			// write-allocate fills), so only demand-path reads are
			// compared against the read demand there.
			achieved := float64(e.DRAMRead + e.NVMRead)
			if sys.Mode == CachedNVM {
				achieved = float64(e.DRAMRead)
			}
			if achieved > float64(ph.ReadBW)+1 {
				return false
			}
			if e.Mult < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: cached-NVM multiplier is bounded by uncached (a cache never
// hurts versus going straight to NVM, for equal pattern/demand) — within
// a small tolerance for the writeback-path contention cases.
func TestCachedNotMuchWorseThanUncachedProperty(t *testing.T) {
	cached := New(sock(), CachedNVM)
	uncached := New(sock(), UncachedNVM)
	f := func(rRaw, wRaw uint16, wsRaw uint8) bool {
		ph := Phase{
			Name: "p", Share: 1,
			ReadBW:  units.Bandwidth(float64(rRaw) * 1e7),
			WriteBW: units.Bandwidth(float64(wRaw) * 1e7),
			ReadMix: Pure(memdev.Stencil), WritePattern: memdev.Strided,
			WorkingSet: units.Bytes(wsRaw) * units.GiB,
		}
		mc := cached.SolveEpoch(ph, 48).Mult
		mu := uncached.SolveEpoch(ph, 48).Mult
		return mc <= mu*1.35+0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
