package traffic

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/xrand"
)

// Event is one scheduled submission: a client index into Spec.Clients
// and an offset from the start of the replay.
type Event struct {
	At     time.Duration
	Client int
}

// MaxEvents bounds a generated schedule. Validate's rate and duration
// caps admit specs whose expected event count is astronomically larger
// than any harness run; Timeline refuses them gracefully instead of
// allocating without bound (fuzzed specs reach here).
const MaxEvents = 1 << 20

// Defaults applied when an arrival leaves its shape parameters zero.
const (
	defaultGammaCV     = 2.0
	defaultBurstSize   = 8.0
	defaultBurstFactor = 10.0
)

// gapSampler draws unit-mean inter-arrival gaps in normalized time.
// Timeline stretches them through the phase-level hazard so a client's
// long-run rate is Spec.Rate x RateFraction x level regardless of the
// process shape. Samplers may carry state (bursty's burst countdown),
// so each client gets a fresh one.
type gapSampler func(*xrand.Rand) float64

// newSampler builds the unit-mean gap sampler for an arrival config
// (already validated).
func newSampler(a Arrival) gapSampler {
	switch a.Process {
	case "", Poisson:
		return func(r *xrand.Rand) float64 { return r.Exp(1) }
	case Gamma:
		cv := a.CV
		if cv == 0 {
			cv = defaultGammaCV
		}
		// Gaps ~ Gamma(shape k, scale 1/k): unit mean, CV = 1/sqrt(k).
		k := 1 / (cv * cv)
		return func(r *xrand.Rand) float64 { return gamma(r, k) / k }
	case Bursty:
		return burstySampler(a)
	default:
		panic(fmt.Sprintf("traffic: unvalidated arrival process %q", a.Process))
	}
}

// gamma draws a Gamma(k, 1) variate by Marsaglia-Tsang squeeze
// (shape-only; callers scale). For k < 1 the k+1 draw is boosted down
// by U^(1/k).
func gamma(r *xrand.Rand, k float64) float64 {
	if k < 1 {
		u := 1 - r.Float64() // (0,1]
		return gamma(r, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - r.Float64() // (0,1], keeps the log finite
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// burstySampler is an on/off process: bursts of geometric mean size
// Burst whose in-burst gaps run Factor times faster than the mean,
// separated by off-gaps sized so the long-run mean gap stays exactly 1.
// Per cycle: Burst arrivals over one off-gap (mean Burst-(Burst-1)/
// Factor) plus Burst-1 in-burst gaps (mean 1/Factor each) — total
// expected time Burst, i.e. unit mean per arrival.
func burstySampler(a Arrival) gapSampler {
	burst := a.Burst
	if burst == 0 {
		burst = defaultBurstSize
	}
	factor := a.Factor
	if factor == 0 {
		factor = defaultBurstFactor
	}
	offMean := burst - (burst-1)/factor
	remaining := 0
	return func(r *xrand.Rand) float64 {
		if remaining > 0 {
			remaining--
			return r.Exp(factor)
		}
		n := 1
		if burst > 1 {
			// Geometric on {1,2,...} with mean burst, by inversion.
			p := 1 / burst
			u := 1 - r.Float64() // (0,1]
			n = 1 + int(math.Log(u)/math.Log(1-p))
		}
		remaining = n - 1
		return r.Exp(1 / offMean)
	}
}

// segment is one piece of the piecewise-linear phase-level function:
// the rate multiplier runs linearly from `from` to `to` over dur
// seconds. Drain renders as a zero segment.
type segment struct {
	from, to float64
	dur      float64
}

// segments lowers the spec's phases to the level function. Ramps start
// from the previous phase's end level (0 before the first phase); a
// spec without phases is one steady unit-level segment of Duration
// seconds.
func (s Spec) segments() []segment {
	if len(s.Phases) == 0 {
		return []segment{{from: 1, to: 1, dur: s.Duration}}
	}
	segs := make([]segment, 0, len(s.Phases))
	level := 0.0
	for _, p := range s.Phases {
		seg := segment{dur: p.Duration}
		switch p.Kind {
		case Ramp:
			seg.from, seg.to = level, p.Level
		case Steady, Spike:
			seg.from, seg.to = p.Level, p.Level
		case Drain:
			seg.from, seg.to = 0, 0
		}
		level = seg.to
		segs = append(segs, seg)
	}
	return segs
}

// Timeline expands the spec into its deterministic arrival schedule
// under the given seed. Every client gets an independent generator
// split from the seed in declaration order, then its unit-mean gaps are
// mapped through the time-varying hazard h(t) = Rate x RateFraction x
// level(t) by exact integration over the piecewise-linear level
// function — thinning-free, so ramps and spikes bend the schedule
// without discarding draws. Events come back merged in time order
// (ties broken by client index). The spec must already be valid.
func (s Spec) Timeline(seed uint64) ([]Event, error) {
	segs := s.segments()
	base := xrand.New(seed)
	var events []Event
	for ci, c := range s.Clients {
		rng := base.Split()
		sample := newSampler(c.Arrival)
		rate := s.Rate * c.RateFraction
		si := 0
		start := 0.0 // absolute time at the head of segment si
		x := 0.0     // offset into segment si
		for si < len(segs) {
			g := sample(rng)
			// Walk segments until the accumulated hazard covers g.
			for si < len(segs) {
				seg := segs[si]
				levelAtX := seg.from + (seg.to-seg.from)*x/seg.dur
				// Exact trapezoid: the level is linear in t.
				rem := rate * (levelAtX + seg.to) / 2 * (seg.dur - x)
				if rem <= 0 || rem < g {
					g -= rem
					start += seg.dur
					si++
					x = 0
					continue
				}
				// Solve A w^2 + B w = g for the advance w within the
				// segment, in the stable positive-root form (valid for
				// rising and falling ramps alike; A=0 for steady).
				A := rate * (seg.to - seg.from) / seg.dur / 2
				B := rate * levelAtX
				var w float64
				if g > 0 {
					w = 2 * g / (B + math.Sqrt(B*B+4*A*g))
				}
				if w > seg.dur-x {
					w = seg.dur - x
				}
				x += w
				if len(events) >= MaxEvents {
					return nil, fmt.Errorf("traffic %s: schedule exceeds %d events; lower rate or duration", s.Name, MaxEvents)
				}
				events = append(events, Event{
					At:     time.Duration((start + x) * float64(time.Second)),
					Client: ci,
				})
				break
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Client < events[j].Client
	})
	return events, nil
}
