package traffic

import (
	"context"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/memsys"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/session"
)

// loadSpec is a fast two-class spec for driver tests: a critical bursty
// client over a one-point inline sweep and a background poisson client
// over the two-point hypre-trace preset.
func loadSpec() Spec {
	return Spec{
		Name:     "test-load",
		Seed:     11,
		Rate:     40,
		Duration: 1,
		Clients: []Client{
			{
				ID:           "hot",
				RateFraction: 0.7,
				Class:        Critical,
				Arrival:      Arrival{Process: Bursty, Burst: 4, Factor: 6},
				Submit: Template{Spec: &scenario.Spec{
					Name:    "test-load-probe",
					Apps:    []string{"XSBench"},
					Modes:   []memsys.Mode{memsys.CachedNVM},
					Threads: []int{24},
				}},
			},
			{
				ID:           "cold",
				RateFraction: 0.3,
				Class:        Background,
				Arrival:      Arrival{Process: Poisson},
				Submit:       Template{Preset: "hypre-trace"},
			},
		},
	}
}

func newManager(t *testing.T) *session.Manager {
	t.Helper()
	mgr := session.NewManager(engine.New(platform.NewPurley().Socket(0), 4))
	t.Cleanup(mgr.Close)
	return mgr
}

func TestReplayInProcess(t *testing.T) {
	sp := loadSpec()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	mgr := newManager(t)
	rep, err := Replay(context.Background(), NewManagerTarget(mgr), sp, Options{
		FullSpeed:   true,
		MaxInFlight: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("replay not clean: %+v", rep.Total)
	}
	if rep.Total.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if len(rep.Classes) != 2 || rep.Classes[0].Class != Critical || rep.Classes[1].Class != Background {
		t.Fatalf("classes = %+v, want [critical background]", rep.Classes)
	}
	sum := 0
	for _, c := range rep.Classes {
		if c.Completed != c.Offered {
			t.Errorf("class %s: completed %d of %d offered", c.Class, c.Completed, c.Offered)
		}
		if c.FirstPoint.Count != c.Completed {
			t.Errorf("class %s: %d first-point samples for %d completions", c.Class, c.FirstPoint.Count, c.Completed)
		}
		if c.Done.Count != c.Completed {
			t.Errorf("class %s: %d done samples for %d completions", c.Class, c.Done.Count, c.Completed)
		}
		if c.FirstPoint.P99 <= 0 || c.Done.P99 < c.FirstPoint.P50 {
			t.Errorf("class %s: implausible latency digest %+v / %+v", c.Class, c.FirstPoint, c.Done)
		}
		// Every arrival past the first re-submits the same origin, so the
		// class must see cache hits.
		if c.Offered > 1 && c.CacheHits == 0 {
			t.Errorf("class %s: no cache hits across %d identical submissions", c.Class, c.Offered)
		}
		if c.CacheHitRate <= 0 || c.CacheHitRate >= 1 {
			t.Errorf("class %s: cache hit rate %v out of (0,1)", c.Class, c.CacheHitRate)
		}
		sum += c.Offered
	}
	if sum != rep.Total.Offered {
		t.Errorf("class offered sums to %d, total says %d", sum, rep.Total.Offered)
	}
	if rep.Total.FirstPoint.Count != rep.Total.Completed {
		t.Errorf("total first-point samples %d != completed %d", rep.Total.FirstPoint.Count, rep.Total.Completed)
	}
	if rep.Total.AchievedRate <= 0 {
		t.Error("zero achieved rate")
	}
	if _, err := rep.JSON(); err != nil {
		t.Errorf("report JSON: %v", err)
	}
	if tbl := rep.Table(); len(tbl) == 0 {
		t.Error("empty report table")
	}
}

// A plan-kind template must run through SubmitPlan and still complete
// cleanly with cache accounting.
func TestReplayPlanKind(t *testing.T) {
	sp := loadSpec()
	sp.Clients[0].Submit = Template{Preset: "prediction-concurrency", Kind: Plan}
	sp.Rate = 10
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	mgr := newManager(t)
	rep, err := Replay(context.Background(), NewManagerTarget(mgr), sp, Options{
		FullSpeed:   true,
		MaxInFlight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("plan replay not clean: %+v", rep.Total)
	}
	for _, c := range rep.Classes {
		if c.Class == Critical && c.Offered > 1 && c.CacheHits == 0 {
			t.Errorf("repeated plans saw no cache hits: %+v", c)
		}
	}
}

// Deterministic seeding: two full-speed replays of the same spec offer
// the identical arrival sequence (same per-class offered counts), and a
// different seed reshuffles it.
func TestReplayDeterministicOffered(t *testing.T) {
	sp := loadSpec()
	mgr := newManager(t)
	tgt := NewManagerTarget(mgr)
	a, err := Replay(context.Background(), tgt, sp, Options{FullSpeed: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(context.Background(), tgt, sp, Options{FullSpeed: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Classes {
		if a.Classes[i].Offered != b.Classes[i].Offered {
			t.Errorf("class %s offered drifted between identical replays: %d vs %d",
				a.Classes[i].Class, a.Classes[i].Offered, b.Classes[i].Offered)
		}
	}
}

// Cancelling mid-schedule books the unreached arrivals as dropped and
// still returns the partial report.
func TestReplayCancelDrops(t *testing.T) {
	sp := loadSpec()
	sp.Rate = 20
	sp.Duration = 30
	mgr := newManager(t)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	rep, err := Replay(ctx, NewManagerTarget(mgr), sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Dropped == 0 {
		t.Fatalf("no drops after mid-schedule cancel: %+v", rep.Total)
	}
	for _, c := range rep.Classes {
		if got := c.Submitted + c.Failed + c.Dropped; got != c.Offered {
			t.Errorf("class %s: submitted %d + failed %d + dropped %d != offered %d",
				c.Class, c.Submitted, c.Failed, c.Dropped, c.Offered)
		}
	}
}

// Truncation by Options.Duration caps the offered schedule.
func TestReplayDurationTruncates(t *testing.T) {
	sp := loadSpec()
	full, err := sp.Timeline(sp.Seed)
	if err != nil {
		t.Fatal(err)
	}
	mgr := newManager(t)
	rep, err := Replay(context.Background(), NewManagerTarget(mgr), sp, Options{
		FullSpeed: true,
		Duration:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Offered >= len(full) {
		t.Fatalf("truncated replay offered %d of %d full-schedule arrivals", rep.Total.Offered, len(full))
	}
	if !rep.Clean() {
		t.Fatalf("truncated replay not clean: %+v", rep.Total)
	}
}
