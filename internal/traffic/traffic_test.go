package traffic

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// valid returns a minimal valid spec for mutation in table tests.
func valid() Spec {
	return Spec{
		Name:     "t",
		Rate:     5,
		Duration: 2,
		Clients: []Client{{
			ID:           "c0",
			RateFraction: 1,
			Class:        Batch,
			Submit:       Template{Preset: "hypre-trace"},
		}},
	}
}

func TestPresetsValidateAndResolve(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Presets() {
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate preset name %s", s.Name)
		}
		seen[s.Name] = true
		for _, c := range s.Clients {
			spec, err := c.Submit.Resolve()
			if err != nil {
				t.Errorf("preset %s client %s: %v", s.Name, c.ID, err)
			}
			if spec.Size() == 0 {
				t.Errorf("preset %s client %s: template expands to zero points", s.Name, c.ID)
			}
		}
	}
	if _, err := ByName("bursty-two-class"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Fatal("ByName(no-such) did not fail")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, s := range Presets() {
		b, err := Encode(s)
		if err != nil {
			t.Fatalf("%s: encode: %v", s.Name, err)
		}
		parsed, err := ParseSpec(b, s.Name+".json")
		if err != nil {
			t.Fatalf("%s: parse: %v", s.Name, err)
		}
		b2, err := Encode(parsed)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", s.Name, err)
		}
		if !bytes.Equal(b, b2) {
			t.Errorf("%s: encode not byte-stable through a parse round trip", s.Name)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{
			"top level",
			`{"name":"x","rate":1,"duration_s":1,"burstiness":2,"clients":[]}`,
			`unknown field "burstiness"`,
		},
		{
			"inside client",
			`{"name":"x","rate":1,"duration_s":1,"clients":[{"id":"a","rate_fraction":1,"slo_class":"batch","arrival":{},"submit":{"preset":"hypre-trace"},"priority":9}]}`,
			`unknown field "priority"`,
		},
		{
			"inside arrival",
			`{"name":"x","rate":1,"duration_s":1,"clients":[{"id":"a","rate_fraction":1,"slo_class":"batch","arrival":{"lambda":3},"submit":{"preset":"hypre-trace"}}]}`,
			`unknown field "lambda"`,
		},
		{
			"inside inline scenario spec",
			`{"name":"x","rate":1,"duration_s":1,"clients":[{"id":"a","rate_fraction":1,"slo_class":"batch","arrival":{},"submit":{"spec":{"name":"s","apps":["XSBench"],"cores":[4]}}}]}`,
			`unknown field "cores"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json), "bad.json")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestParseErrorCarriesPosition(t *testing.T) {
	data := []byte("{\n  \"name\": \"x\",\n  \"typo\": 1\n}")
	_, err := ParseSpec(data, "bad.json")
	if err == nil || !strings.Contains(err.Error(), "bad.json:3:") {
		t.Fatalf("error = %v, want a bad.json:3:<col> position", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "no name"},
		{"zero rate", func(s *Spec) { s.Rate = 0 }, "rate"},
		{"huge rate", func(s *Spec) { s.Rate = MaxRate + 1 }, "rate"},
		{"no clients", func(s *Spec) { s.Clients = nil }, "no clients"},
		{"no client id", func(s *Spec) { s.Clients[0].ID = "" }, "no id"},
		{"duplicate id", func(s *Spec) { s.Clients = append(s.Clients, s.Clients[0]) }, "duplicate"},
		{"fractions off", func(s *Spec) { s.Clients[0].RateFraction = 0.5 }, "sum"},
		{"bad class", func(s *Spec) { s.Clients[0].Class = "gold" }, "slo_class"},
		{"cv on poisson", func(s *Spec) { s.Clients[0].Arrival.CV = 2 }, "poisson takes no"},
		// cv below 0.01 once sent the gamma sampler's shape k=1/cv^2 to
		// +Inf and Marsaglia-Tsang into an infinite rejection loop.
		{"tiny gamma cv", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: Gamma, CV: 1e-300}
		}, "cv"},
		{"burst on gamma", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: Gamma, Burst: 4}
		}, "gamma takes no"},
		{"factor too low", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: Bursty, Factor: 1}
		}, "factor"},
		{"unknown process", func(s *Spec) { s.Clients[0].Arrival.Process = "weibull" }, "unknown process"},
		{"no template", func(s *Spec) { s.Clients[0].Submit = Template{} }, "preset or an inline spec"},
		{"unknown preset", func(s *Spec) { s.Clients[0].Submit.Preset = "no-such" }, "no-such"},
		{"bad kind", func(s *Spec) { s.Clients[0].Submit.Kind = "dryrun" }, "unknown kind"},
		{"no duration", func(s *Spec) { s.Duration = 0 }, "duration_s"},
		{"duration and phases", func(s *Spec) {
			s.Phases = []Phase{{Kind: Steady, Duration: 1, Level: 1}}
		}, "exclusive"},
		{"drain with level", func(s *Spec) {
			s.Duration = 0
			s.Phases = []Phase{{Kind: Drain, Duration: 1, Level: 2}}
		}, "drain"},
		{"unknown phase kind", func(s *Spec) {
			s.Duration = 0
			s.Phases = []Phase{{Kind: "hold", Duration: 1, Level: 1}}
		}, "unknown kind"},
		{"steady without level", func(s *Spec) {
			s.Duration = 0
			s.Phases = []Phase{{Kind: Steady, Duration: 1}}
		}, "level"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
}

func TestTimelineDeterministic(t *testing.T) {
	s, err := ByName("bursty-two-class")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Timeline(s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Timeline(s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty timeline")
	}
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c, err := s.Timeline(s.Seed + 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical timeline")
		}
	}
	total := time.Duration(s.TotalDuration() * float64(time.Second))
	last := time.Duration(0)
	for _, e := range a {
		if e.At < last {
			t.Fatalf("timeline not sorted at %v", e.At)
		}
		last = e.At
		if e.At < 0 || e.At > total {
			t.Fatalf("event at %v outside [0,%v]", e.At, total)
		}
		if e.Client < 0 || e.Client >= len(s.Clients) {
			t.Fatalf("event client %d out of range", e.Client)
		}
	}
}

// Every process must hit its configured long-run rate: 600 expected
// arrivals leaves statistical noise well inside +-15%.
func TestTimelineRates(t *testing.T) {
	for _, arr := range []Arrival{
		{Process: Poisson},
		{Process: Gamma, CV: 0.5},
		{Process: Gamma, CV: 3},
		{Process: Bursty, Burst: 6, Factor: 8},
		{Process: Bursty}, // defaults
	} {
		s := valid()
		s.Rate = 60
		s.Duration = 10
		s.Clients[0].Arrival = arr
		if err := s.Validate(); err != nil {
			t.Fatalf("%+v: %v", arr, err)
		}
		ev, err := s.Timeline(99)
		if err != nil {
			t.Fatal(err)
		}
		want := s.Rate * s.Duration
		if got := float64(len(ev)); got < want*0.85 || got > want*1.15 {
			t.Errorf("%+v: %v events, want ~%v", arr, got, want)
		}
	}
}

// A 0->1 ramp integrates to half a steady phase's arrivals, skewed
// late: the linear hazard puts the median arrival at sqrt(1/2) of the
// window, not the middle.
func TestTimelineRampShape(t *testing.T) {
	s := valid()
	s.Rate = 200
	s.Duration = 0
	s.Phases = []Phase{{Kind: Ramp, Duration: 10, Level: 1}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := s.Timeline(5)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Rate * 10 / 2
	if got := float64(len(ev)); got < want*0.85 || got > want*1.15 {
		t.Fatalf("%v events under the ramp, want ~%v", got, want)
	}
	median := ev[len(ev)/2].At.Seconds()
	if median < 6.5 || median > 7.7 {
		t.Errorf("ramp median arrival at %.2fs, want ~7.07s", median)
	}
}

func TestTimelineDrainIsSilent(t *testing.T) {
	s := valid()
	s.Rate = 100
	s.Duration = 0
	s.Phases = []Phase{
		{Kind: Steady, Duration: 2, Level: 1},
		{Kind: Drain, Duration: 5},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := s.Timeline(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) == 0 {
		t.Fatal("no events in the steady window")
	}
	for _, e := range ev {
		if e.At.Seconds() > 2 {
			t.Fatalf("arrival at %v inside the drain window", e.At)
		}
	}
}

func TestTimelineRefusesRunaway(t *testing.T) {
	s := valid()
	s.Rate = MaxRate
	s.Duration = MaxDuration
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Timeline(1); err == nil || !strings.Contains(err.Error(), "events") {
		t.Fatalf("Timeline = %v, want a MaxEvents refusal", err)
	}
}
