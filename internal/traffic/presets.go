package traffic

import (
	"fmt"

	"repro/internal/memsys"
	"repro/internal/scenario"
)

// Presets returns the shipped traffic specs — the load shapes the
// harness, CI and the tracked benchmark replay. Like the scenario
// presets they are exported to pinned files (traffic/ at the repo
// root, via nvmload -export-specs) and guarded byte-for-byte by test.
func Presets() []Spec {
	return []Spec{
		{
			Name:        "bursty-two-class",
			Description: "Canonical serving load: a bursty critical interactive cohort over a small repeated sweep, next to a poisson batch cohort replaying the beyond-dram preset, through ramp/steady/spike/drain",
			Seed:        42,
			Rate:        24,
			Clients: []Client{
				{
					ID:           "interactive",
					RateFraction: 0.75,
					Class:        Critical,
					Arrival:      Arrival{Process: Bursty, Burst: 6, Factor: 8},
					Submit: Template{Spec: &scenario.Spec{
						Name:        "traffic-interactive",
						Description: "Two-point interactive probe: XSBench on cached NVM at 24 and 48 threads",
						Apps:        []string{"XSBench"},
						Modes:       []memsys.Mode{memsys.CachedNVM},
						Threads:     []int{24, 48},
					}},
				},
				{
					ID:           "batch-sweeps",
					RateFraction: 0.25,
					Class:        Batch,
					Arrival:      Arrival{Process: Poisson},
					Submit:       Template{Preset: "beyond-dram"},
				},
			},
			Phases: []Phase{
				{Name: "warmup", Kind: Ramp, Duration: 1, Level: 1},
				{Name: "cruise", Kind: Steady, Duration: 2, Level: 1},
				{Name: "rush", Kind: Spike, Duration: 0.5, Level: 3},
				{Name: "cooldown", Kind: Drain, Duration: 0.5},
			},
		},
		{
			Name:        "mixed-plan-load",
			Description: "Steady mixed load: gamma-arrival critical plans over prediction-concurrency beside background poisson sweeps of hypre-trace",
			Seed:        7,
			Rate:        10,
			Duration:    3,
			Clients: []Client{
				{
					ID:           "planners",
					RateFraction: 0.4,
					Class:        Critical,
					Arrival:      Arrival{Process: Gamma, CV: 2},
					Submit:       Template{Preset: "prediction-concurrency", Kind: Plan},
				},
				{
					ID:           "trawlers",
					RateFraction: 0.6,
					Class:        Background,
					Arrival:      Arrival{Process: Poisson},
					Submit:       Template{Preset: "hypre-trace"},
				},
			},
		},
	}
}

// ByName returns the shipped traffic preset with the given name.
func ByName(name string) (Spec, error) {
	var names []string
	for _, s := range Presets() {
		if s.Name == name {
			return s, nil
		}
		names = append(names, s.Name)
	}
	return Spec{}, fmt.Errorf("traffic: unknown preset %q (have %v)", name, names)
}
