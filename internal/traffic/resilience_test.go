package traffic

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
)

// flakyDaemon 429s (with Retry-After: 1) the first reject submissions,
// then accepts, recording the SLO class header of each attempt.
func flakyDaemon(t *testing.T, reject int, status int) (*httptest.Server, *atomic.Int64, chan string) {
	t.Helper()
	var attempts atomic.Int64
	classes := make(chan string, 64)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		classes <- r.Header.Get(SLOHeader)
		if attempts.Add(1) <= int64(reject) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"overloaded"}`, status)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"sweep-000001","status_url":"/v1/sweeps/sweep-000001","outcomes_url":"/v1/sweeps/sweep-000001/outcomes"}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &attempts, classes
}

// probe is a minimal valid submission.
func probe(class Class) Submission {
	return Submission{
		Spec:  scenario.Spec{Name: "probe", Apps: []string{"XSBench"}},
		Class: class,
	}
}

// recordSleeps replaces the target's backoff sleep with a recorder, so
// retry tests cost no wall-clock time.
func recordSleeps(tgt *RemoteTarget) *[]time.Duration {
	var waits []time.Duration
	tgt.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	return &waits
}

// A shed submission is retried with backoff floored at the daemon's
// Retry-After, the SLO class travels on every attempt, and the handle
// reports how many retries admission took.
func TestRemoteSubmitRetriesOn429(t *testing.T) {
	srv, attempts, classes := flakyDaemon(t, 2, http.StatusTooManyRequests)
	tgt := NewRemoteTarget(srv.URL, srv.Client()).
		WithRetry(RetryPolicy{Max: 5, Base: 10 * time.Millisecond, Seed: 42})
	waits := recordSleeps(tgt)

	h, err := tgt.Submit(context.Background(), probe(Critical))
	if err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	rh, ok := h.(interface{ Retries() int })
	if !ok || rh.Retries() != 2 {
		t.Errorf("handle retries = %v (ok=%v), want 2", rh, ok)
	}
	if len(*waits) != 2 {
		t.Fatalf("backoffs = %d, want 2", len(*waits))
	}
	for i, w := range *waits {
		if w < time.Second {
			t.Errorf("backoff %d = %v, want >= 1s (Retry-After floor)", i, w)
		}
	}
	for i := 0; i < 3; i++ {
		if c := <-classes; c != string(Critical) {
			t.Errorf("attempt %d carried class %q, want critical", i, c)
		}
	}
}

// When the retry budget runs out on 429, the failure is a typed
// ShedError so the driver can book it apart from real failures.
func TestRemoteSubmitShedsAfterBudget(t *testing.T) {
	srv, attempts, _ := flakyDaemon(t, 1<<30, http.StatusTooManyRequests)
	tgt := NewRemoteTarget(srv.URL, srv.Client()).
		WithRetry(RetryPolicy{Max: 3, Base: time.Millisecond, Seed: 7})
	recordSleeps(tgt)

	_, err := tgt.Submit(context.Background(), probe(Background))
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if se.Retries != 3 || attempts.Load() != 4 {
		t.Errorf("shed after %d retries / %d attempts, want 3/4", se.Retries, attempts.Load())
	}
}

// 5xx responses are transient; 4xx (other than 429) are caller bugs
// and must not burn the retry budget.
func TestRemoteSubmitRetryClassification(t *testing.T) {
	srv5, attempts5, _ := flakyDaemon(t, 1, http.StatusServiceUnavailable)
	tgt5 := NewRemoteTarget(srv5.URL, srv5.Client()).
		WithRetry(RetryPolicy{Max: 2, Base: time.Millisecond, Seed: 1})
	recordSleeps(tgt5)
	if _, err := tgt5.Submit(context.Background(), probe("")); err != nil {
		t.Fatalf("5xx not retried: %v", err)
	}
	if attempts5.Load() != 2 {
		t.Errorf("5xx attempts = %d, want 2", attempts5.Load())
	}

	srv4, attempts4, _ := flakyDaemon(t, 1<<30, http.StatusBadRequest)
	tgt4 := NewRemoteTarget(srv4.URL, srv4.Client()).
		WithRetry(RetryPolicy{Max: 5, Base: time.Millisecond, Seed: 1})
	recordSleeps(tgt4)
	_, err := tgt4.Submit(context.Background(), probe(""))
	if err == nil || errors.As(err, new(*ShedError)) {
		t.Fatalf("400 err = %v, want a permanent non-shed failure", err)
	}
	if attempts4.Load() != 1 {
		t.Errorf("400 attempts = %d, want 1 (no retry)", attempts4.Load())
	}
}

// A refused connection is transient: retried through the budget, then
// surfaced as the transport error (not a shed).
func TestRemoteSubmitRetriesConnRefused(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens here any more
	tgt := NewRemoteTarget(url, nil).
		WithRetry(RetryPolicy{Max: 2, Base: time.Millisecond, Seed: 9})
	waits := recordSleeps(tgt)

	_, err := tgt.Submit(context.Background(), probe(Batch))
	if err == nil || errors.As(err, new(*ShedError)) {
		t.Fatalf("err = %v, want a transport failure", err)
	}
	if len(*waits) != 2 {
		t.Errorf("backoffs = %d, want 2 (budget spent)", len(*waits))
	}
}

// The jitter draws are seeded: the same policy replays the same backoff
// sequence, so chaos runs are reproducible end to end.
func TestRetryBackoffDeterministic(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		srv, _, _ := flakyDaemon(t, 1<<30, http.StatusTooManyRequests)
		tgt := NewRemoteTarget(srv.URL, srv.Client()).
			WithRetry(RetryPolicy{Max: 4, Base: time.Millisecond, Seed: seed})
		waits := recordSleeps(tgt)
		tgt.Submit(context.Background(), probe(""))
		return *waits
	}
	a, b := seq(3), seq(3)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("sequences = %d/%d backoffs, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at backoff %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// shedTarget sheds every background submission and admits the rest
// after one simulated retry, for driver accounting tests.
type shedTarget struct{}

func (shedTarget) Name() string { return "shed-stub" }

func (shedTarget) Submit(_ context.Context, sub Submission) (Handle, error) {
	if sub.Class == Background {
		return nil, &ShedError{Target: "shed-stub", Retries: 2}
	}
	return retriedHandle{}, nil
}

type retriedHandle struct{}

func (retriedHandle) Retries() int { return 1 }

func (retriedHandle) Watch(ctx context.Context, onFirst func()) (RunStatus, error) {
	if onFirst != nil {
		onFirst()
	}
	return RunStatus{State: stateDone, Points: 1}, nil
}

// The replay report carries sheds and retries per class: background
// arrivals all shed (with their retry cost), critical arrivals land
// with theirs, and a replay with sheds is not clean.
func TestReplayCountsShedAndRetries(t *testing.T) {
	sp := loadSpec()
	rep, err := Replay(context.Background(), shedTarget{}, sp, Options{FullSpeed: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("replay with sheds reported clean")
	}
	byClass := map[Class]ClassReport{}
	for _, c := range rep.Classes {
		byClass[c.Class] = c
	}
	bg, crit := byClass[Background], byClass[Critical]
	if bg.Shed != bg.Offered || bg.Failed != 0 || bg.Completed != 0 {
		t.Errorf("background = %+v, want all %d offered shed, none failed", bg, bg.Offered)
	}
	if bg.Retries != 2*bg.Shed {
		t.Errorf("background retries = %d, want %d", bg.Retries, 2*bg.Shed)
	}
	if crit.Shed != 0 || crit.Completed != crit.Offered || crit.Retries != crit.Submitted {
		t.Errorf("critical = %+v, want 0 shed, all completed, 1 retry each", crit)
	}
	if rep.Total.Shed != bg.Shed || rep.Total.Retries != bg.Retries+crit.Retries {
		t.Errorf("total shed/retries = %d/%d, want %d/%d",
			rep.Total.Shed, rep.Total.Retries, bg.Shed, bg.Retries+crit.Retries)
	}
}
