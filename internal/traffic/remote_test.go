package traffic

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/scenario"
)

// stubDaemon fakes the nvmserve surface the remote target consumes:
// submission, NDJSON streaming, status. The first status poll reports
// running to exercise the terminal-state polling loop.
func stubDaemon(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var submits, statusPolls atomic.Int64
	mux := http.NewServeMux()
	submit := func(kind string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var sp scenario.Spec
			if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			n := submits.Add(1)
			id := fmt.Sprintf("%s-%06d", kind, n)
			stream := "outcomes"
			streamKey := "outcomes_url"
			if kind == "plan" {
				stream = "points"
				streamKey = "points_url"
			}
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":%q,"status_url":"/v1/%ss/%s",%q:"/v1/%ss/%s/%s"}`,
				id, kind, id, streamKey, kind, id, stream)
		}
	}
	mux.HandleFunc("POST /v1/sweeps", submit("sweep"))
	mux.HandleFunc("POST /v1/plans", submit("plan"))
	stream := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"app":"XSBench","time_s":1.0}`)
		fmt.Fprintln(w, `{"app":"XSBench","time_s":2.0}`)
	}
	mux.HandleFunc("GET /v1/sweeps/{id}/outcomes", stream)
	mux.HandleFunc("GET /v1/plans/{id}/points", stream)
	status := func(w http.ResponseWriter, r *http.Request) {
		if statusPolls.Add(1) == 1 {
			fmt.Fprint(w, `{"state":"running","points":2,"cache_hits":0,"cache_misses":0}`)
			return
		}
		fmt.Fprint(w, `{"state":"done","points":2,"cache_hits":3,"cache_misses":2}`)
	}
	mux.HandleFunc("GET /v1/sweeps/{id}", status)
	mux.HandleFunc("GET /v1/plans/{id}", status)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &submits
}

func TestRemoteTargetWatch(t *testing.T) {
	srv, submits := stubDaemon(t)
	tgt := NewRemoteTarget(srv.URL+"/", srv.Client())
	for _, kind := range []Kind{Sweep, Plan} {
		h, err := tgt.Submit(context.Background(), Submission{
			Spec: scenario.Spec{Name: "probe", Apps: []string{"XSBench"}},
			Kind: kind,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		fired := 0
		st, err := h.Watch(context.Background(), func() { fired++ })
		if err != nil {
			t.Fatalf("%s: watch: %v", kind, err)
		}
		if fired != 1 {
			t.Errorf("%s: onFirst fired %d times, want once", kind, fired)
		}
		if st.State != "done" || st.Points != 2 || st.Hits != 3 || st.Misses != 2 {
			t.Errorf("%s: status = %+v", kind, st)
		}
	}
	if submits.Load() != 2 {
		t.Errorf("daemon saw %d submissions, want 2", submits.Load())
	}
}

func TestRemoteTargetSubmitRejection(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"no such preset"}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	tgt := NewRemoteTarget(srv.URL, srv.Client())
	_, err := tgt.Submit(context.Background(), Submission{
		Spec: scenario.Spec{Name: "probe", Apps: []string{"XSBench"}},
	})
	if err == nil || !strings.Contains(err.Error(), "no such preset") {
		t.Fatalf("submit error = %v, want the daemon's message", err)
	}
}
