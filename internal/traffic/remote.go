package traffic

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/scenario"
	"repro/internal/session"
)

// RemoteTarget drives a live nvmserve daemon over its HTTP API:
// submissions POST to /v1/sweeps or /v1/plans, first-point latency is
// observed on the NDJSON stream, and the terminal snapshot comes from
// the status document.
type RemoteTarget struct {
	base   string
	client *http.Client
}

// NewRemoteTarget wraps a daemon base URL (e.g. http://127.0.0.1:8080)
// as a traffic target. client nil means http.DefaultClient; give the
// streams no overall timeout — the driver's context bounds them.
func NewRemoteTarget(base string, client *http.Client) *RemoteTarget {
	if client == nil {
		client = http.DefaultClient
	}
	return &RemoteTarget{base: strings.TrimRight(base, "/"), client: client}
}

// Name identifies the target in reports.
func (t *RemoteTarget) Name() string { return t.base }

// remoteReply is the union of the daemon's accepted-sweep and
// accepted-plan documents.
type remoteReply struct {
	ID        string `json:"id"`
	Status    string `json:"status_url"`
	Outcomes  string `json:"outcomes_url"`
	PointsURL string `json:"points_url"`
}

// remoteStatus is the slice of the daemon's status documents the driver
// consumes; sweeps and plans share these fields.
type remoteStatus struct {
	State  string `json:"state"`
	Points int    `json:"points"`
	Hits   uint64 `json:"cache_hits"`
	Misses uint64 `json:"cache_misses"`
	Error  string `json:"error"`
}

// Submit posts the spec and returns a handle over its stream and
// status URLs.
func (t *RemoteTarget) Submit(ctx context.Context, sub Submission) (Handle, error) {
	path := "/v1/sweeps"
	if sub.Kind == Plan {
		path = "/v1/plans"
	}
	body, err := scenario.Encode(sub.Spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("traffic: %s %s: %s: %s", http.MethodPost, path, resp.Status, bytes.TrimSpace(msg))
	}
	var reply remoteReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("traffic: decoding %s reply: %w", path, err)
	}
	stream := reply.Outcomes
	if stream == "" {
		stream = reply.PointsURL
	}
	if reply.ID == "" || reply.Status == "" || stream == "" {
		return nil, fmt.Errorf("traffic: %s reply missing id/status/stream URLs", path)
	}
	return &remoteHandle{t: t, status: reply.Status, stream: stream}, nil
}

type remoteHandle struct {
	t      *RemoteTarget
	status string
	stream string
}

// Watch consumes the run's NDJSON stream (invoking onFirst at the first
// data line), then polls the status document until the state is
// terminal.
func (h *remoteHandle) Watch(ctx context.Context, onFirst func()) (RunStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.t.base+h.stream, nil)
	if err != nil {
		return RunStatus{}, err
	}
	resp, err := h.t.client.Do(req)
	if err != nil {
		return RunStatus{}, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	fired := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 || bytes.HasPrefix(line, []byte(`{"error"`)) {
			continue
		}
		if !fired && onFirst != nil {
			onFirst()
			fired = true
		}
	}
	scanErr := sc.Err()
	resp.Body.Close()
	if err := ctx.Err(); err != nil {
		return RunStatus{}, err
	}
	if scanErr != nil {
		return RunStatus{}, fmt.Errorf("traffic: streaming %s: %w", h.stream, scanErr)
	}
	// The stream closes when the run's point log is complete; the status
	// document may trail it by the width of the run goroutine's final
	// transition, so poll briefly until terminal.
	for {
		st, err := h.t.getStatus(ctx, h.status)
		if err != nil {
			return RunStatus{}, err
		}
		if session.State(st.State).Terminal() {
			return RunStatus{
				State:  st.State,
				Points: st.Points,
				Hits:   st.Hits,
				Misses: st.Misses,
				Err:    st.Error,
			}, nil
		}
		select {
		case <-ctx.Done():
			return RunStatus{}, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (t *RemoteTarget) getStatus(ctx context.Context, path string) (remoteStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+path, nil)
	if err != nil {
		return remoteStatus{}, err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return remoteStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return remoteStatus{}, fmt.Errorf("traffic: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	var st remoteStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return remoteStatus{}, fmt.Errorf("traffic: decoding %s: %w", path, err)
	}
	return st, nil
}
