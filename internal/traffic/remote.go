package traffic

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/xrand"
)

// SLOHeader is the request header a submission's SLO class travels in;
// nvmserve's admission gate reads it to decide who sheds first.
const SLOHeader = "X-SLO-Class"

// RetryPolicy configures a remote target's resilience to transient
// submission failures: 429 (the daemon shedding load), 5xx, and
// connection errors are retried with exponential backoff and full
// jitter, honoring the daemon's Retry-After when it names a longer
// wait. The zero value disables retries.
type RetryPolicy struct {
	// Max is the retry budget beyond the first attempt.
	Max int
	// Base is the first backoff window; it doubles per retry (capped at
	// maxBackoff). Zero defaults to 100ms.
	Base time.Duration
	// Seed drives the jitter draws; the same seed replays the same
	// backoff sequence.
	Seed uint64
}

// maxBackoff caps the exponential backoff window.
const maxBackoff = 30 * time.Second

// NewTransport returns an HTTP transport tuned for sustained traffic
// against a handful of daemons: http.DefaultTransport's dialing and
// timeout behaviour with the idle pool widened. The default transport
// keeps only 2 idle connections per host, so a high-rate replay (or a
// fleet worker's pull/result loop) above that concurrency tears down
// and re-dials connections on every burst; 64 per host keeps one
// warm connection per in-flight stream at any realistic -concurrency.
func NewTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	return t
}

// sharedClient is the process-wide tuned client: one transport (one
// connection pool) shared by every remote target and fleet worker, so
// connection reuse spans targets pointing at the same daemon.
var sharedClient = &http.Client{Transport: NewTransport()}

// SharedClient returns the process-wide HTTP client over the tuned
// transport (see NewTransport). It has no overall request timeout —
// NDJSON streams are open-ended; bound requests with contexts.
func SharedClient() *http.Client { return sharedClient }

// RemoteTarget drives a live nvmserve daemon over its HTTP API:
// submissions POST to /v1/sweeps or /v1/plans, first-point latency is
// observed on the NDJSON stream, and the terminal snapshot comes from
// the status document.
type RemoteTarget struct {
	base   string
	client *http.Client
	retry  RetryPolicy

	// mu serializes the jitter generator; Submit is driven from the
	// replay loop but nothing forbids concurrent callers.
	mu  sync.Mutex
	rng *xrand.Rand
	// sleep waits out one backoff or the context, whichever first;
	// injectable so tests don't wait wall-clock time.
	sleep func(context.Context, time.Duration) error
}

// NewRemoteTarget wraps a daemon base URL (e.g. http://127.0.0.1:8080)
// as a traffic target. client nil means the process-wide tuned client
// (SharedClient — widened idle pool, so replay concurrency above 2
// reuses connections instead of re-dialing); give the streams no
// overall timeout — the driver's context bounds them.
func NewRemoteTarget(base string, client *http.Client) *RemoteTarget {
	if client == nil {
		client = SharedClient()
	}
	return &RemoteTarget{
		base:   strings.TrimRight(base, "/"),
		client: client,
		rng:    xrand.New(1),
		sleep:  sleepCtx,
	}
}

// WithRetry enables the retry policy and returns the target.
func (t *RemoteTarget) WithRetry(p RetryPolicy) *RemoteTarget {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	t.retry = p
	t.rng = xrand.New(seed)
	return t
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// backoff waits out retry attempt's window: full jitter over the
// doubled base, floored at the daemon's Retry-After when present.
func (t *RemoteTarget) backoff(ctx context.Context, attempt int, retryAfter time.Duration) error {
	window := t.retry.Base << attempt
	if window <= 0 || window > maxBackoff {
		window = maxBackoff
	}
	t.mu.Lock()
	wait := time.Duration(t.rng.Float64() * float64(window))
	t.mu.Unlock()
	if wait < retryAfter {
		wait = retryAfter
	}
	return t.sleep(ctx, wait)
}

// Name identifies the target in reports.
func (t *RemoteTarget) Name() string { return t.base }

// remoteReply is the union of the daemon's accepted-sweep and
// accepted-plan documents.
type remoteReply struct {
	ID        string `json:"id"`
	Status    string `json:"status_url"`
	Outcomes  string `json:"outcomes_url"`
	PointsURL string `json:"points_url"`
}

// remoteStatus is the slice of the daemon's status documents the driver
// consumes; sweeps and plans share these fields.
type remoteStatus struct {
	State  string `json:"state"`
	Points int    `json:"points"`
	Hits   uint64 `json:"cache_hits"`
	Misses uint64 `json:"cache_misses"`
	Error  string `json:"error"`
}

// Submit posts the spec (under its SLO-class header) and returns a
// handle over its stream and status URLs. Transient rejections — the
// daemon shedding with 429, a 5xx, a refused or reset connection — are
// retried per the target's RetryPolicy; a submission still shed when
// the budget runs out comes back as a *ShedError so the driver can
// account it separately from a failure.
func (t *RemoteTarget) Submit(ctx context.Context, sub Submission) (Handle, error) {
	path := "/v1/sweeps"
	if sub.Kind == Plan {
		path = "/v1/plans"
	}
	body, err := scenario.Encode(sub.Spec)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		h, code, retryAfter, err := t.submitOnce(ctx, path, body, sub.Class)
		if h != nil {
			h.retries = attempt
			return h, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Connection-level failures (no status at all) and 429/5xx are
		// transient; any other status (400 bad spec, 404 preset, a
		// malformed accept document) is the caller's or daemon's bug and
		// retrying cannot help.
		retryable := code == 0 || code == http.StatusTooManyRequests || code >= 500
		if !retryable || attempt >= t.retry.Max {
			if code == http.StatusTooManyRequests {
				return nil, &ShedError{Target: t.base, Retries: attempt}
			}
			return nil, err
		}
		if werr := t.backoff(ctx, attempt, retryAfter); werr != nil {
			return nil, werr
		}
	}
}

// submitOnce runs one submission attempt. On acceptance it returns the
// handle; on an HTTP rejection the status code (and any Retry-After)
// with err carrying the rendered failure; on a transport failure just
// the error.
func (t *RemoteTarget) submitOnce(ctx context.Context, path string, body []byte, class Class) (*remoteHandle, int, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if class != "" {
		req.Header.Set(SLOHeader, string(class))
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		retryAfter := time.Duration(0)
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			retryAfter = time.Duration(s) * time.Second
		}
		return nil, resp.StatusCode, retryAfter,
			fmt.Errorf("traffic: %s %s: %s: %s", http.MethodPost, path, resp.Status, bytes.TrimSpace(msg))
	}
	var reply remoteReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, resp.StatusCode, 0, fmt.Errorf("traffic: decoding %s reply: %w", path, err)
	}
	stream := reply.Outcomes
	if stream == "" {
		stream = reply.PointsURL
	}
	if reply.ID == "" || reply.Status == "" || stream == "" {
		return nil, resp.StatusCode, 0, fmt.Errorf("traffic: %s reply missing id/status/stream URLs", path)
	}
	return &remoteHandle{t: t, status: reply.Status, stream: stream}, resp.StatusCode, 0, nil
}

type remoteHandle struct {
	t       *RemoteTarget
	status  string
	stream  string
	retries int
}

// Retries reports how many re-submissions this run's admission took;
// the driver sums them into the per-class report.
func (h *remoteHandle) Retries() int { return h.retries }

// Watch consumes the run's NDJSON stream (invoking onFirst at the first
// data line), then polls the status document until the state is
// terminal.
func (h *remoteHandle) Watch(ctx context.Context, onFirst func()) (RunStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.t.base+h.stream, nil)
	if err != nil {
		return RunStatus{}, err
	}
	resp, err := h.t.client.Do(req)
	if err != nil {
		return RunStatus{}, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	fired := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 || bytes.HasPrefix(line, []byte(`{"error"`)) {
			continue
		}
		if !fired && onFirst != nil {
			onFirst()
			fired = true
		}
	}
	scanErr := sc.Err()
	resp.Body.Close()
	if err := ctx.Err(); err != nil {
		return RunStatus{}, err
	}
	if scanErr != nil {
		return RunStatus{}, fmt.Errorf("traffic: streaming %s: %w", h.stream, scanErr)
	}
	// The stream closes when the run's point log is complete; the status
	// document may trail it by the width of the run goroutine's final
	// transition, so poll briefly until terminal.
	for {
		st, err := h.t.getStatus(ctx, h.status)
		if err != nil {
			return RunStatus{}, err
		}
		if session.State(st.State).Terminal() {
			return RunStatus{
				State:  st.State,
				Points: st.Points,
				Hits:   st.Hits,
				Misses: st.Misses,
				Err:    st.Error,
			}, nil
		}
		select {
		case <-ctx.Done():
			return RunStatus{}, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (t *RemoteTarget) getStatus(ctx context.Context, path string) (remoteStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+path, nil)
	if err != nil {
		return remoteStatus{}, err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return remoteStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return remoteStatus{}, fmt.Errorf("traffic: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	var st remoteStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return remoteStatus{}, fmt.Errorf("traffic: decoding %s: %w", path, err)
	}
	return st, nil
}
