package traffic

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/stats"
)

// ClassReport is one SLO class's view of a replay: how much traffic was
// offered versus actually landed, the admission-to-first-point and
// admission-to-done latency digests, and the class's share of the
// engine's result-cache accounting.
type ClassReport struct {
	Class Class `json:"class"`
	// Offered counts scheduled arrivals; Submitted the ones the target
	// accepted; Completed the runs that finished done; Failed submit
	// rejections plus runs ending failed or cancelled; Dropped arrivals
	// never attempted (the replay context fired first). Shed counts
	// submissions the target's admission gate declined for overload (429
	// through the retry budget) — the daemon protecting itself, booked
	// apart from failures; Retries the re-submissions transient
	// rejections cost the class.
	Offered   int `json:"offered"`
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Dropped   int `json:"dropped"`
	Shed      int `json:"shed"`
	Retries   int `json:"retries"`
	// OfferedRate is Offered over the schedule's duration; AchievedRate
	// is Completed over the replay's wall-clock elapsed time.
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	// FirstPoint digests admission-to-first-point latency (seconds):
	// submit accepted to first resolved point observed. Done is
	// admission to terminal state for completed runs.
	FirstPoint stats.LatencySummary `json:"first_point_s"`
	Done       stats.LatencySummary `json:"done_s"`
	// Cache accounting summed over the class's submission origins (the
	// engine's per-origin counters at each origin's last completed run).
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Report is the outcome of one Replay.
type Report struct {
	Spec   string `json:"spec"`
	Target string `json:"target"`
	Seed   uint64 `json:"seed"`
	// ScheduledS is the generated schedule's span; ElapsedS the
	// wall-clock time the replay actually took (schedule plus waiting
	// out the last runs).
	ScheduledS float64 `json:"scheduled_s"`
	ElapsedS   float64 `json:"elapsed_s"`
	// Classes holds one report per SLO class with traffic, in the fixed
	// critical/batch/background order; Total aggregates them.
	Classes []ClassReport `json:"classes"`
	Total   ClassReport   `json:"total"`
}

// Clean reports whether every offered arrival was submitted and
// completed — the load-smoke gate's definition of a clean replay. A
// shed arrival is not clean: the daemon stayed healthy, but the offered
// load did not all land.
func (r *Report) Clean() bool {
	return r.Total.Dropped == 0 && r.Total.Failed == 0 && r.Total.Shed == 0 &&
		r.Total.Completed == r.Total.Offered
}

// JSON renders the report as an indented document.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Table renders the report as an aligned text table, one row per class
// plus the total.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traffic %s -> %s (seed %d)\n", r.Spec, r.Target, r.Seed)
	fmt.Fprintf(&b, "scheduled %.2fs, elapsed %.2fs\n\n", r.ScheduledS, r.ElapsedS)
	fmt.Fprintf(&b, "%-11s %8s %8s %8s %8s %8s %8s %8s %11s %11s %11s %11s %11s %7s\n",
		"class", "offered", "done", "failed", "dropped", "shed", "retries", "rate/s",
		"first-p50", "first-p95", "first-p99", "done-p50", "done-p99", "cache")
	row := func(c ClassReport) {
		fmt.Fprintf(&b, "%-11s %8d %8d %8d %8d %8d %8d %8.2f %9.2fms %9.2fms %9.2fms %9.2fms %9.2fms %6.1f%%\n",
			c.Class, c.Offered, c.Completed, c.Failed, c.Dropped, c.Shed, c.Retries, c.AchievedRate,
			1e3*c.FirstPoint.P50, 1e3*c.FirstPoint.P95, 1e3*c.FirstPoint.P99,
			1e3*c.Done.P50, 1e3*c.Done.P99, 100*c.CacheHitRate)
	}
	for _, c := range r.Classes {
		row(c)
	}
	row(r.Total)
	return b.String()
}
