package traffic

import (
	"bytes"
	"testing"
)

// FuzzTrafficSpec drives arbitrary bytes through the strict codec and,
// when they parse, through re-encode and schedule generation: a valid
// spec must round-trip byte-stably and Timeline must terminate without
// panicking (the MaxEvents guard, not the fuzzer's patience, bounds
// runaway schedules).
func FuzzTrafficSpec(f *testing.F) {
	for _, s := range Presets() {
		b, err := Encode(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","rate":1e308,"duration_s":1e308,"clients":[{"id":"a","rate_fraction":1,"slo_class":"critical","arrival":{"process":"bursty","burst":1,"factor":2},"submit":{"preset":"hypre-trace"}}]}`))
	f.Add([]byte(`{"name":"x","rate":1,"clients":[],"phases":[{"kind":"ramp","duration_s":-1}]}`))
	f.Add([]byte(`{"name":"x","rate":1,"duration_s":1,"clients":[{"id":"a","rate_fraction":1,"slo_class":"batch","arrival":{},"submit":{"spec":{"name":"s","apps":["XSBench"]},"kind":"plan"}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data, "fuzz.json")
		if err != nil {
			return
		}
		b, err := Encode(s)
		if err != nil {
			t.Fatalf("valid spec failed to encode: %v", err)
		}
		s2, err := ParseSpec(b, "fuzz2.json")
		if err != nil {
			t.Fatalf("encoded spec failed to re-parse: %v", err)
		}
		b2, err := Encode(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("encode not byte-stable:\n%s\nvs\n%s", b, b2)
		}
		if _, err := s.Timeline(s.Seed); err == nil {
			// fine: schedule generated
		}
	})
}
