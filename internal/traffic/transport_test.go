package traffic

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// The tuned transport keeps burst connections alive: two rounds of 8
// concurrent requests against one host must open fewer connections
// than the 16 a reuse-free client would — with a 64-deep idle pool the
// second round rides the first round's connections.
func TestTransportReusesConnectionsAcrossBursts(t *testing.T) {
	var opened atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			opened.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	client := &http.Client{Transport: NewTransport()}
	defer client.CloseIdleConnections()
	burst := func() {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := client.Get(srv.URL)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
		}
		wg.Wait()
	}
	burst()
	afterFirst := opened.Load()
	if afterFirst > 8 {
		t.Fatalf("first burst of 8 opened %d connections", afterFirst)
	}
	burst()
	if total := opened.Load(); total >= 16 {
		t.Errorf("two bursts of 8 opened %d connections, want reuse (< 16)", total)
	}
}

// Sequential requests after a burst always reuse: the idle pool is
// deeper than the burst, so not one extra dial happens.
func TestTransportSequentialAfterBurstNoNewDials(t *testing.T) {
	var opened atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			opened.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	client := &http.Client{Transport: NewTransport()}
	defer client.CloseIdleConnections()
	get := func() error {
		resp, err := client.Get(srv.URL)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		return resp.Body.Close()
	}
	if err := get(); err != nil {
		t.Fatal(err)
	}
	after := opened.Load()
	for i := 0; i < 16; i++ {
		if err := get(); err != nil {
			t.Fatal(err)
		}
	}
	if total := opened.Load(); total != after {
		t.Errorf("16 sequential requests dialed %d new connections, want 0", total-after)
	}
}

// NewRemoteTarget with a nil client rides the shared tuned pool, and
// the pool is wider than the default transport's 2-per-host cap.
func TestSharedClientDefaults(t *testing.T) {
	if NewRemoteTarget("http://x", nil).client != SharedClient() {
		t.Error("nil-client RemoteTarget does not use the shared client")
	}
	tr, ok := SharedClient().Transport.(*http.Transport)
	if !ok {
		t.Fatalf("shared transport is %T", SharedClient().Transport)
	}
	if tr.MaxIdleConnsPerHost <= http.DefaultTransport.(*http.Transport).MaxIdleConnsPerHost {
		t.Errorf("shared per-host idle pool %d not raised above the default", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConnsPerHost < 64 {
		t.Errorf("per-host idle pool %d, want >= 64", tr.MaxIdleConnsPerHost)
	}
}
