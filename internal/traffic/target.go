package traffic

import (
	"context"
	"fmt"

	"repro/internal/planner"
	"repro/internal/scenario"
	"repro/internal/session"
)

// Submission is one unit of traffic: a resolved scenario spec, how to
// run it, and the SLO class it travels under. Remote targets forward
// the class as the X-SLO-Class header so the daemon's admission gate
// can shed bottom-up; empty means the daemon's default (batch).
type Submission struct {
	Spec  scenario.Spec
	Kind  Kind
	Class Class
}

// ShedError reports a submission the target refused for overload (HTTP
// 429) even after the retry budget was spent. The driver books sheds
// separately from failures: a shed is the daemon protecting itself, not
// the run going wrong.
type ShedError struct {
	// Target is the target's name; Retries how many re-submissions were
	// attempted before giving up.
	Target  string
	Retries int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("traffic: %s shed the submission (429) after %d retries", e.Target, e.Retries)
}

// RunStatus is the terminal snapshot of one submitted run, normalized
// across sweeps and plans, in-process and remote: the lifecycle state
// (the session.State vocabulary), the point count, and the per-origin
// cache accounting at completion time.
type RunStatus struct {
	State  string
	Points int
	Hits   uint64
	Misses uint64
	Err    string
}

// stateDone is the terminal state of a fully successful run — the
// string form of session.Done, which the HTTP API also speaks.
const stateDone = string(session.Done)

// Handle follows one submitted run to completion.
type Handle interface {
	// Watch blocks until the run reaches a terminal state, invoking
	// onFirst (if non-nil) when the run's first resolved point is
	// observed — the admission-to-first-point moment. The error return
	// is transport-level only (context cancellation, a broken
	// connection); a run that completes as failed or cancelled comes
	// back as a nil error with the state in RunStatus.
	Watch(ctx context.Context, onFirst func()) (RunStatus, error)
}

// Target accepts traffic. The driver is target-agnostic: the same spec
// replays against an in-process session.Manager or a remote nvmserve.
type Target interface {
	Name() string
	Submit(ctx context.Context, sub Submission) (Handle, error)
}

// ManagerTarget drives an in-process session.Manager — the zero-network
// path the tracked benchmark uses, and nvmload's -inprocess mode.
type ManagerTarget struct {
	mgr *session.Manager
}

// NewManagerTarget wraps a session manager as a traffic target.
func NewManagerTarget(m *session.Manager) *ManagerTarget {
	return &ManagerTarget{mgr: m}
}

// Name identifies the target in reports.
func (t *ManagerTarget) Name() string { return "in-process" }

// Submit starts the sweep or plan on the manager.
func (t *ManagerTarget) Submit(_ context.Context, sub Submission) (Handle, error) {
	switch sub.Kind {
	case "", Sweep:
		s, err := t.mgr.Submit(sub.Spec)
		if err != nil {
			return nil, err
		}
		return sweepHandle{s}, nil
	case Plan:
		s, err := t.mgr.SubmitPlan(sub.Spec)
		if err != nil {
			return nil, err
		}
		return planHandle{s}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown submission kind %q", sub.Kind)
	}
}

type sweepHandle struct {
	s *session.Session
}

func (h sweepHandle) Watch(ctx context.Context, onFirst func()) (RunStatus, error) {
	fired := false
	h.s.Stream(ctx, func(scenario.Outcome) error {
		if !fired && onFirst != nil {
			onFirst()
			fired = true
		}
		return nil
	})
	// Stream returns when the deterministic prefix ends, which can be an
	// instant before the session transitions; Wait pins the terminal
	// state (returning the session error, which Status carries too).
	h.s.Wait(ctx)
	if err := ctx.Err(); err != nil {
		return RunStatus{}, err
	}
	st := h.s.Status()
	return RunStatus{
		State:  string(st.State),
		Points: st.Points,
		Hits:   st.Hits,
		Misses: st.Misses,
		Err:    st.Error,
	}, nil
}

type planHandle struct {
	s *session.PlanSession
}

func (h planHandle) Watch(ctx context.Context, onFirst func()) (RunStatus, error) {
	fired := false
	h.s.Stream(ctx, func(planner.PlannedPoint) error {
		if !fired && onFirst != nil {
			onFirst()
			fired = true
		}
		return nil
	})
	h.s.Wait(ctx)
	if err := ctx.Err(); err != nil {
		return RunStatus{}, err
	}
	st := h.s.Status()
	return RunStatus{
		State:  string(st.State),
		Points: st.Points,
		Hits:   st.Hits,
		Misses: st.Misses,
		Err:    st.Error,
	}, nil
}
