// Package traffic is the workload model for the serving layer: a
// declarative description of *who* submits sweeps and plans to a
// session manager, *how often*, and *in what pattern* — the "heavy
// traffic from millions of users" half of the serving story, made
// measurable.
//
// A Spec names a set of clients, each owning a fraction of an aggregate
// submission rate, an arrival process (poisson, gamma, bursty), an SLO
// class (critical, batch, background) and a submission template (a
// shipped scenario preset by name, or an inline scenario spec; run as
// an exhaustive sweep or an adaptive plan). Cohort phases (ramp,
// steady, spike, drain) shape the aggregate rate over time. Specs are
// strict-JSON files exactly like scenario specs: unknown fields are
// rejected, Validate runs on load, and the shipped presets under
// traffic/ at the repository root are pinned byte-for-byte by test.
//
// Timeline expands a spec into a deterministic arrival schedule — every
// stochastic draw comes from a seeded xrand generator split per client,
// so the same spec replays the same schedule on every machine — and
// Replay (driver.go) plays that schedule against a live target: an
// in-process session.Manager or a remote nvmserve URL. The driver
// closes the loop, recording per-SLO-class admission-to-first-point and
// admission-to-done latency histograms, achieved versus offered rates,
// and per-class result-cache hit rates (report.go). cmd/nvmload is the
// CLI over Replay, and the canonical "bursty-two-class" preset is the
// tracked benchkit workload whose p99 admission-to-first-point latency
// is gated in CI next to the allocs/op gates.
package traffic

import (
	"fmt"
	"math"

	"repro/internal/scenario"
)

// Class is an SLO tier. Classes group the driver's latency and cache
// accounting; they do not (yet) change how the daemon schedules work.
type Class string

const (
	// Critical is latency-sensitive interactive traffic.
	Critical Class = "critical"
	// Batch is throughput-oriented bulk traffic.
	Batch Class = "batch"
	// Background is best-effort filler traffic.
	Background Class = "background"
)

// Classes returns the SLO tiers in reporting order.
func Classes() []Class { return []Class{Critical, Batch, Background} }

func validClass(c Class) bool {
	return c == Critical || c == Batch || c == Background
}

// Kind selects how a submission is evaluated.
type Kind string

const (
	// Sweep submits the template spec as an exhaustive sweep session.
	Sweep Kind = "sweep"
	// Plan submits it through the adaptive planner.
	Plan Kind = "plan"
)

// Arrival processes.
const (
	// Poisson is memoryless: exponential inter-arrival gaps. The default.
	Poisson = "poisson"
	// Gamma draws gamma-distributed gaps; CV > 1 is burstier than
	// poisson, CV < 1 more regular.
	Gamma = "gamma"
	// Bursty is an on/off process: geometric-size bursts of closely
	// spaced arrivals separated by long gaps, preserving the client's
	// long-run mean rate.
	Bursty = "bursty"
)

// Phase kinds.
const (
	// Ramp interpolates the rate multiplier linearly from the previous
	// phase's end level (0 before the first phase) to this phase's Level.
	Ramp = "ramp"
	// Steady holds the multiplier at Level.
	Steady = "steady"
	// Spike is a steady phase by another name: a short high-Level burst
	// window, kept distinct so specs read as intended.
	Spike = "spike"
	// Drain generates no new arrivals; the driver keeps waiting on
	// outstanding sessions through it.
	Drain = "drain"
)

// Validation bounds. They exist so a hostile or typoed spec cannot ask
// the generator for an astronomically long or dense schedule; real
// harness runs sit orders of magnitude below them.
const (
	// MaxRate is the largest accepted aggregate submission rate (per
	// second).
	MaxRate = 10000
	// MaxDuration is the longest accepted schedule in seconds, phases
	// included.
	MaxDuration = 86400
	// MaxLevel is the largest accepted phase rate multiplier.
	MaxLevel = 1000
)

// Spec declares a traffic workload. The zero value is invalid; specs
// come from presets.go or from files via ParseSpec/LoadSpec.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives every stochastic draw in Timeline. The same seed
	// replays the same schedule; Options.Seed overrides it per run.
	Seed uint64 `json:"seed,omitempty"`
	// Rate is the aggregate submission rate (submissions/second) at
	// phase level 1.0, shared among the clients by RateFraction.
	Rate float64 `json:"rate"`
	// Duration is the schedule length in seconds when Phases is empty
	// (a single steady phase at level 1.0). Exclusive with Phases.
	Duration float64 `json:"duration_s,omitempty"`
	// Clients are the traffic sources; their RateFractions sum to 1.
	Clients []Client `json:"clients"`
	// Phases shape the aggregate rate over time; empty means one steady
	// Duration-second phase.
	Phases []Phase `json:"phases,omitempty"`
}

// Client is one traffic source.
type Client struct {
	ID string `json:"id"`
	// RateFraction is this client's share of Spec.Rate; fractions are
	// positive and sum to 1 across the spec.
	RateFraction float64 `json:"rate_fraction"`
	// Class is the client's SLO tier (critical, batch, background).
	Class Class `json:"slo_class"`
	// Arrival configures the inter-arrival process.
	Arrival Arrival `json:"arrival"`
	// Submit is what each arrival submits.
	Submit Template `json:"submit"`
}

// Arrival configures a client's inter-arrival process.
type Arrival struct {
	// Process is poisson (default when empty), gamma or bursty.
	Process string `json:"process,omitempty"`
	// CV is the gamma process's coefficient of variation; 0 defaults to
	// 2 (bursty). Rejected on other processes.
	CV float64 `json:"cv,omitempty"`
	// Burst is the bursty process's mean arrivals per burst; 0 defaults
	// to 8. Rejected on other processes.
	Burst float64 `json:"burst,omitempty"`
	// Factor is the bursty process's in-burst rate amplification; 0
	// defaults to 10. Rejected on other processes.
	Factor float64 `json:"factor,omitempty"`
}

// Template is what a client submits on each arrival: exactly one of a
// shipped scenario preset (by name) or an inline scenario spec, run as
// a sweep (default) or an adaptive plan. The resolved spec's name is
// the engine's cache-accounting origin, so repeated submissions of one
// template show up as cache hits in the per-class report.
type Template struct {
	Preset string         `json:"preset,omitempty"`
	Spec   *scenario.Spec `json:"spec,omitempty"`
	Kind   Kind           `json:"kind,omitempty"`
}

// Phase is one window of the cohort dynamics.
type Phase struct {
	Name string `json:"name,omitempty"`
	// Kind is ramp, steady, spike or drain.
	Kind string `json:"kind"`
	// Duration is the phase length in seconds.
	Duration float64 `json:"duration_s"`
	// Level is the target rate multiplier: the held level for
	// steady/spike, the ramp's end level for ramp. Drain phases carry
	// none.
	Level float64 `json:"level,omitempty"`
}

// TotalDuration returns the schedule length in seconds: the phase
// durations summed, or Duration when the spec has no phases.
func (s Spec) TotalDuration() float64 {
	if len(s.Phases) == 0 {
		return s.Duration
	}
	total := 0.0
	for _, p := range s.Phases {
		total += p.Duration
	}
	return total
}

// finitePos reports whether x is a finite positive number.
func finitePos(x float64) bool {
	return x > 0 && !math.IsInf(x, 1)
}

// Validate checks the spec. Everything the generator and driver assume
// is enforced here, so Timeline and Replay can trust their input.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("traffic: spec has no name")
	}
	if !finitePos(s.Rate) || s.Rate > MaxRate {
		return fmt.Errorf("traffic %s: rate %v out of (0,%d] submissions/s", s.Name, s.Rate, MaxRate)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("traffic %s: no clients", s.Name)
	}
	sum := 0.0
	ids := map[string]bool{}
	for i, c := range s.Clients {
		if c.ID == "" {
			return fmt.Errorf("traffic %s: clients[%d] has no id", s.Name, i)
		}
		if ids[c.ID] {
			return fmt.Errorf("traffic %s: duplicate client id %q", s.Name, c.ID)
		}
		ids[c.ID] = true
		if !finitePos(c.RateFraction) || c.RateFraction > 1 {
			return fmt.Errorf("traffic %s: client %s: rate_fraction %v out of (0,1]", s.Name, c.ID, c.RateFraction)
		}
		sum += c.RateFraction
		if !validClass(c.Class) {
			return fmt.Errorf("traffic %s: client %s: slo_class %q is not critical|batch|background", s.Name, c.ID, c.Class)
		}
		if err := c.Arrival.validate(); err != nil {
			return fmt.Errorf("traffic %s: client %s: %w", s.Name, c.ID, err)
		}
		if err := c.Submit.validate(); err != nil {
			return fmt.Errorf("traffic %s: client %s: %w", s.Name, c.ID, err)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("traffic %s: client rate_fractions sum to %v, want 1", s.Name, sum)
	}
	if len(s.Phases) == 0 {
		if !finitePos(s.Duration) || s.Duration > MaxDuration {
			return fmt.Errorf("traffic %s: duration_s %v out of (0,%d] (or declare phases)", s.Name, s.Duration, MaxDuration)
		}
		return nil
	}
	if s.Duration != 0 {
		return fmt.Errorf("traffic %s: duration_s and phases are exclusive; phase durations define the schedule", s.Name)
	}
	total := 0.0
	for i, p := range s.Phases {
		label := p.Name
		if label == "" {
			label = fmt.Sprintf("phases[%d]", i)
		}
		if !finitePos(p.Duration) {
			return fmt.Errorf("traffic %s: phase %s: non-positive duration_s %v", s.Name, label, p.Duration)
		}
		total += p.Duration
		switch p.Kind {
		case Ramp:
			if p.Level < 0 || math.IsNaN(p.Level) || p.Level > MaxLevel {
				return fmt.Errorf("traffic %s: phase %s: ramp level %v out of [0,%d]", s.Name, label, p.Level, MaxLevel)
			}
		case Steady, Spike:
			if !finitePos(p.Level) || p.Level > MaxLevel {
				return fmt.Errorf("traffic %s: phase %s: %s level %v out of (0,%d]", s.Name, label, p.Kind, p.Level, MaxLevel)
			}
		case Drain:
			if p.Level != 0 {
				return fmt.Errorf("traffic %s: phase %s: drain phases take no level", s.Name, label)
			}
		default:
			return fmt.Errorf("traffic %s: phase %s: unknown kind %q (have ramp|steady|spike|drain)", s.Name, label, p.Kind)
		}
	}
	if total > MaxDuration {
		return fmt.Errorf("traffic %s: phases span %v s, max %d", s.Name, total, MaxDuration)
	}
	return nil
}

func (a Arrival) validate() error {
	switch a.Process {
	case "", Poisson:
		if a.CV != 0 || a.Burst != 0 || a.Factor != 0 {
			return fmt.Errorf("arrival: poisson takes no cv/burst/factor")
		}
	case Gamma:
		if a.Burst != 0 || a.Factor != 0 {
			return fmt.Errorf("arrival: gamma takes no burst/factor")
		}
		// The lower bound keeps the sampler's shape k = 1/cv^2 finite
		// and in Marsaglia-Tsang's comfortable range.
		if a.CV != 0 && (a.CV < 0.01 || math.IsNaN(a.CV) || a.CV > 100) {
			return fmt.Errorf("arrival: gamma cv %v out of [0.01,100]", a.CV)
		}
	case Bursty:
		if a.CV != 0 {
			return fmt.Errorf("arrival: bursty takes no cv")
		}
		if a.Burst != 0 && (a.Burst < 1 || math.IsNaN(a.Burst) || a.Burst > 10000) {
			return fmt.Errorf("arrival: bursty burst %v out of [1,10000]", a.Burst)
		}
		if a.Factor != 0 && (a.Factor <= 1 || math.IsNaN(a.Factor) || a.Factor > 10000) {
			return fmt.Errorf("arrival: bursty factor %v out of (1,10000]", a.Factor)
		}
	default:
		return fmt.Errorf("arrival: unknown process %q (have poisson|gamma|bursty)", a.Process)
	}
	return nil
}

func (t Template) validate() error {
	switch {
	case t.Preset == "" && t.Spec == nil:
		return fmt.Errorf("submit: declare a preset or an inline spec")
	case t.Preset != "" && t.Spec != nil:
		return fmt.Errorf("submit: preset %q and an inline spec are exclusive", t.Preset)
	case t.Preset != "":
		if _, err := scenario.ByName(t.Preset); err != nil {
			return fmt.Errorf("submit: %w", err)
		}
	default:
		if t.Spec.Name == "" {
			return fmt.Errorf("submit: inline spec has no name (the name is the cache origin)")
		}
		if err := t.Spec.Validate(); err != nil {
			return fmt.Errorf("submit: %w", err)
		}
	}
	switch t.Kind {
	case "", Sweep, Plan:
	default:
		return fmt.Errorf("submit: unknown kind %q (have sweep|plan)", t.Kind)
	}
	return nil
}

// kind returns the template's effective kind.
func (t Template) kind() Kind {
	if t.Kind == "" {
		return Sweep
	}
	return t.Kind
}

// Resolve returns the scenario spec a template submits: the named
// preset, or the inline spec.
func (t Template) Resolve() (scenario.Spec, error) {
	if t.Preset != "" {
		return scenario.ByName(t.Preset)
	}
	if t.Spec == nil {
		return scenario.Spec{}, fmt.Errorf("traffic: template has no preset and no spec")
	}
	return *t.Spec, nil
}
