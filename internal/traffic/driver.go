package traffic

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
)

// Options tune a Replay.
type Options struct {
	// Seed overrides the spec's seed when non-zero.
	Seed uint64
	// Duration truncates the schedule: arrivals past it are not offered.
	// Zero replays the full schedule.
	Duration time.Duration
	// FullSpeed ignores the schedule's inter-arrival gaps and submits
	// each arrival as soon as the loop reaches it — the tracked
	// benchmark's mode, where the latency under test is the serving
	// path's, not the spec's pacing.
	FullSpeed bool
	// MaxInFlight caps concurrently outstanding runs; an arrival waits
	// for a slot (skewing pacing) rather than overrunning the target.
	// Zero means unlimited.
	MaxInFlight int
	// Logf, when set, receives submit failures and non-done run notes.
	Logf func(format string, args ...any)
}

// originStats is the engine's cumulative per-origin cache accounting as
// of the last completed run submitting that origin.
type originStats struct {
	hits, misses uint64
}

// classAcc accumulates one SLO class's replay measurements. All access
// is serialized by the driver's mutex.
type classAcc struct {
	offered    int
	submitted  int
	completed  int
	failed     int
	dropped    int
	shed       int
	retries    int
	firstPoint stats.Histogram
	done       stats.Histogram
	origins    map[string]originStats
}

// Replay plays the spec's arrival schedule against the target and
// reports what came back, per SLO class: admission-to-first-point and
// admission-to-done latency digests, achieved versus offered rate, and
// cache hit rates. It submits on the schedule's clock (unless
// Options.FullSpeed), follows every run to its terminal state, and
// returns once all outstanding runs have resolved. A fired ctx stops
// new submissions (the remainder count as dropped) and cancels
// outstanding watches; the partial report is still returned.
func Replay(ctx context.Context, target Target, sp Spec, opts Options) (*Report, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = sp.Seed
	}
	events, err := sp.Timeline(seed)
	if err != nil {
		return nil, err
	}
	scheduled := sp.TotalDuration()
	if opts.Duration > 0 && opts.Duration.Seconds() < scheduled {
		scheduled = opts.Duration.Seconds()
		n := 0
		for _, ev := range events {
			if ev.At > opts.Duration {
				break
			}
			n++
		}
		events = events[:n]
	}

	// Resolve each client's template once; every arrival of a client
	// submits the same spec (that sameness is what makes the result
	// cache part of the serving story).
	subs := make([]Submission, len(sp.Clients))
	for i, c := range sp.Clients {
		resolved, err := c.Submit.Resolve()
		if err != nil {
			return nil, fmt.Errorf("traffic %s: client %s: %w", sp.Name, c.ID, err)
		}
		subs[i] = Submission{Spec: resolved, Kind: c.Submit.kind(), Class: c.Class}
	}

	var mu sync.Mutex
	accs := map[Class]*classAcc{}
	acc := func(c Class) *classAcc {
		if a, ok := accs[c]; ok {
			return a
		}
		a := &classAcc{origins: map[string]originStats{}}
		accs[c] = a
		return a
	}
	for _, ev := range events {
		acc(sp.Clients[ev.Client].Class).offered++
	}
	// dropFrom books every not-yet-attempted arrival as dropped when the
	// replay context fires mid-schedule.
	dropFrom := func(i int) {
		mu.Lock()
		for _, ev := range events[i:] {
			acc(sp.Clients[ev.Client].Class).dropped++
		}
		mu.Unlock()
	}

	var sem chan struct{}
	if opts.MaxInFlight > 0 {
		sem = make(chan struct{}, opts.MaxInFlight)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
loop:
	for i, ev := range events {
		if !opts.FullSpeed {
			if wait := ev.At - time.Since(start); wait > 0 {
				timer.Reset(wait)
				select {
				case <-ctx.Done():
					dropFrom(i)
					break loop
				case <-timer.C:
				}
			}
		}
		if sem != nil {
			select {
			case <-ctx.Done():
				dropFrom(i)
				break loop
			case sem <- struct{}{}:
			}
		}
		if ctx.Err() != nil {
			if sem != nil {
				<-sem
			}
			dropFrom(i)
			break loop
		}
		client := sp.Clients[ev.Client]
		class := client.Class
		sub := subs[ev.Client]
		admitted := time.Now()
		h, err := target.Submit(ctx, sub)
		if err != nil {
			logf("traffic: submit %s (client %s): %v", sub.Spec.Name, client.ID, err)
			mu.Lock()
			// A shed is the target's admission gate declining the run (429
			// after the retry budget) — booked apart from failures, which
			// are runs going wrong.
			var se *ShedError
			if errors.As(err, &se) {
				a := acc(class)
				a.shed++
				a.retries += se.Retries
			} else {
				acc(class).failed++
			}
			mu.Unlock()
			if sem != nil {
				<-sem
			}
			continue
		}
		mu.Lock()
		a := acc(class)
		a.submitted++
		if rh, ok := h.(interface{ Retries() int }); ok {
			a.retries += rh.Retries()
		}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			st, werr := h.Watch(ctx, func() {
				d := time.Since(admitted).Seconds()
				mu.Lock()
				acc(class).firstPoint.Add(d)
				mu.Unlock()
			})
			mu.Lock()
			defer mu.Unlock()
			a := acc(class)
			if werr != nil {
				a.failed++
				return
			}
			a.origins[sub.Spec.Name] = originStats{hits: st.Hits, misses: st.Misses}
			if st.State != stateDone {
				logf("traffic: run of %s ended %s: %s", sub.Spec.Name, st.State, st.Err)
				a.failed++
				return
			}
			a.completed++
			a.done.Add(time.Since(admitted).Seconds())
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return buildReport(sp, target, seed, scheduled, elapsed, accs), nil
}

// buildReport assembles the per-class and total views.
func buildReport(sp Spec, target Target, seed uint64, scheduled float64, elapsed time.Duration, accs map[Class]*classAcc) *Report {
	rep := &Report{
		Spec:       sp.Name,
		Target:     target.Name(),
		Seed:       seed,
		ScheduledS: scheduled,
		ElapsedS:   elapsed.Seconds(),
	}
	var tot ClassReport
	tot.Class = "total"
	var totFirst, totDone stats.Histogram
	for _, class := range Classes() {
		a, ok := accs[class]
		if !ok || a.offered == 0 {
			continue
		}
		c := ClassReport{
			Class:      class,
			Offered:    a.offered,
			Submitted:  a.submitted,
			Completed:  a.completed,
			Failed:     a.failed,
			Dropped:    a.dropped,
			Shed:       a.shed,
			Retries:    a.retries,
			FirstPoint: a.firstPoint.Summary(),
			Done:       a.done.Summary(),
		}
		if scheduled > 0 {
			c.OfferedRate = float64(c.Offered) / scheduled
		}
		if rep.ElapsedS > 0 {
			c.AchievedRate = float64(c.Completed) / rep.ElapsedS
		}
		for _, os := range a.origins {
			c.CacheHits += os.hits
			c.CacheMisses += os.misses
		}
		if n := c.CacheHits + c.CacheMisses; n > 0 {
			c.CacheHitRate = float64(c.CacheHits) / float64(n)
		}
		rep.Classes = append(rep.Classes, c)

		tot.Offered += c.Offered
		tot.Submitted += c.Submitted
		tot.Completed += c.Completed
		tot.Failed += c.Failed
		tot.Dropped += c.Dropped
		tot.Shed += c.Shed
		tot.Retries += c.Retries
		tot.CacheHits += c.CacheHits
		tot.CacheMisses += c.CacheMisses
		for _, x := range a.firstPoint.Samples() {
			totFirst.Add(x)
		}
		for _, x := range a.done.Samples() {
			totDone.Add(x)
		}
	}
	if scheduled > 0 {
		tot.OfferedRate = float64(tot.Offered) / scheduled
	}
	if rep.ElapsedS > 0 {
		tot.AchievedRate = float64(tot.Completed) / rep.ElapsedS
	}
	if n := tot.CacheHits + tot.CacheMisses; n > 0 {
		tot.CacheHitRate = float64(tot.CacheHits) / float64(n)
	}
	tot.FirstPoint = totFirst.Summary()
	tot.Done = totDone.Summary()
	rep.Total = tot
	return rep
}
