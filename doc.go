// Package repro reproduces "Demystifying the Performance of HPC
// Scientific Applications on NVM-based Memory Systems" (Peng, Wu, Ren,
// Li, Gokhale — IPDPS 2020) as a Go library.
//
// The public entry point is internal/core (see README.md for the
// architecture overview); cmd/nvmbench regenerates every table and
// figure of the paper's evaluation, and bench_test.go exposes one
// testing.B benchmark per experiment.
//
// Evaluation flows through two layers added on top of the original
// harness: internal/scenario declares sweeps (application set, mode
// set, thread sweep, footprint scales) as data, and internal/engine
// executes them as (workload, mode, threads) job batches across a
// worker pool with per-mode system memoization and result caching.
// Parallel execution is deterministic: reports are byte-identical to
// the sequential path, and cmd/nvmbench's -parallel flag (or
// core.Machine.RunAllExperimentsParallel) regenerates the full
// evaluation fanned across GOMAXPROCS. Named scenario presets — the
// paper's sweep shapes plus stress sweeps beyond them — run via
// cmd/nvmbench -scenario or core.Machine.RunScenarioNamed.
//
// Scenarios are also data: every scenario.Spec round-trips through a
// JSON schema (scenario.LoadSpec / LoadDir / Encode), so new sweeps —
// including resized and fused multi-application workloads — open from
// spec files without recompiling (cmd/nvmbench -spec). The 13 presets
// ship as specs/*.json, pinned byte-for-byte against the Go literals by
// specs_test.go. The reproduced numbers themselves are pinned too: the
// golden corpus under internal/experiments/testdata/golden holds one
// canonical text artifact per experiment and preset, compared
// byte-for-byte by `go test -run Golden` and regenerated with -update,
// so behaviour-preserving refactors are provably so.
//
// Results are persistent and servable: internal/resultstore puts the
// engine's result cache behind a pluggable Store interface — the
// in-process sharded map (still 0 allocs/op on a cache hit) or a
// disk-backed content-addressed store (append-only JSON-lines segments
// keyed by workload fingerprint, crash-tolerant, compactable) that
// re-serves previously computed points as cache hits across process
// restarts. internal/session runs sweeps asynchronously on top
// (Submit / Status / Stream / Cancel, with cancellation propagated into
// engine batch dispatch so partial results are never persisted), and
// cmd/nvmserve exposes the whole stack as an HTTP/JSON daemon: POST a
// spec to /v1/sweeps, poll /v1/sweeps/{id}, stream NDJSON outcomes, and
// resume interrupted sweeps from the shared store (cmd/nvmbench -store
// uses the same directory for warm-cache CLI runs).
//
// Sweeps also resolve adaptively: internal/planner is the paper's
// Section V "evaluate few, predict the rest" as a subsystem. A spec's
// optional "plan" block (scenario.Plan) selects a seed strategy, an
// evaluation budget and a disagreement threshold; the planner evaluates
// the seed through the engine, trains the configuration-space
// regression (internal/model) per app x mode group, predicts the rest,
// and spends the remaining budget where the leave-one-out ensemble
// disagrees and on verifying the Pareto frontier with real evaluations.
// The full-cartesian preset resolves its frontier from <= 50% real
// evaluations (property-tested against the exhaustive control, golden-
// pinned end to end). internal/explore routes its Pareto search through
// the planner, internal/advisor evaluates through the engine, and the
// nvmserve daemon serves plans at POST /v1/plans with per-round
// progress and an NDJSON point stream (session.Manager.SubmitPlan).
//
// The serving path is exercised under load, not just per request:
// internal/traffic declares traffic as data — a strict-JSON spec
// (traffic/*.json, pinned like the scenario presets) of clients with
// SLO classes (critical/batch/background), deterministic seeded arrival
// processes (poisson, gamma, on/off bursty) shaped by ramp/steady/
// spike/drain phases, each submitting a preset or inline scenario as a
// sweep or a plan. A closed-loop driver (traffic.Replay) replays the
// spec against an in-process session.Manager or a remote nvmserve URL
// and reports per-class admission-to-first-point and admission-to-done
// latency percentiles, achieved vs offered rate, and cache hit rates;
// cmd/nvmload is the CLI. The daemon itself stays bounded under that
// load: session retention is capped (nvmserve -retain), evicting the
// oldest terminal sessions while their points persist in the store.
//
// The stack also scales past one machine: internal/fleet federates
// nvmserve daemons into a coordinator/worker cluster behind the same
// public API. The coordinator plugs into session.Manager as its batch
// executor, shards sweep and plan batches into chunks, and dispatches
// them over a strict-JSON HTTP protocol to workers (nvmserve -worker
// -join) with pull-based work-stealing and deterministic round-robin
// placement; the fingerprint-keyed result store is the fleet-wide
// dedup tier, so only cold points travel and concurrent identical
// points coalesce. Streams, ordering, cancellation and error text are
// byte-identical to a local run; a worker killed mid-sweep has its
// in-flight chunks re-queued whole, a worker whose disk store degrades
// self-evicts, and a fleet of zero workers degenerates to the
// single-process path (see the README's Fleet section).
//
// The hot paths are performance-pinned as well: internal/benchkit
// measures a tracked benchmark set (streaming address simulation,
// packed-tag DRAM cache, trace reconstruction, engine cache hits, the
// full-cartesian sweep, the bursty traffic replay with its p99
// first-point latency extra) and gates it against the committed BENCH_0.json
// baseline — any allocs/op regression or >10% calibration-normalized
// time/op regression fails (cmd/nvmbench -bench-gate; see the README's
// Performance section for budgets and workflow).
package repro
