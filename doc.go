// Package repro reproduces "Demystifying the Performance of HPC
// Scientific Applications on NVM-based Memory Systems" (Peng, Wu, Ren,
// Li, Gokhale — IPDPS 2020) as a Go library.
//
// The public entry point is internal/core (see README.md for the
// architecture overview); cmd/nvmbench regenerates every table and
// figure of the paper's evaluation, and bench_test.go exposes one
// testing.B benchmark per experiment.
package repro
