package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the simulator's design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark regenerates the corresponding artifact and
// fails the run if any paper-shape check deviates, so `-bench` doubles
// as the reproduction gate.

import (
	"runtime"
	"testing"

	"repro/internal/benchkit"
	"repro/internal/dramcache"
	"repro/internal/dwarfs"
	"repro/internal/experiments"
	"repro/internal/memdev"
	"repro/internal/memsys"
	"repro/internal/units"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	ctx := experiments.NewContext()
	ctx.TraceSamples = 100
	fn, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fn(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Checks {
			if !c.Pass {
				b.Fatalf("%s / %s: paper %q, measured %q", id, c.Name, c.Paper, c.Measured)
			}
		}
	}
}

func BenchmarkTable1Platform(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkTable2Benchmarks(b *testing.B)       { benchExperiment(b, "table2") }
func BenchmarkFig2Overview(b *testing.B)           { benchExperiment(b, "fig2") }
func BenchmarkTable3Characterization(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig3LargeProblems(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4HypreTrace(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5WriteThrottling(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6Concurrency(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7FTDiverging(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8ScaLAPACKPhases(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9Checkpoint(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10PredictConcurrency(b *testing.B) {
	benchExperiment(b, "fig10")
}
func BenchmarkFig11PredictDataSize(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12WriteAwarePlacement(b *testing.B) {
	benchExperiment(b, "fig12")
}

// --- ablation / component benches ---

// BenchmarkEpochSolver measures the core bottleneck-model throughput:
// how many phase solves per second the experiment harness can sweep.
func BenchmarkEpochSolver(b *testing.B) {
	ctx := experiments.NewContext()
	sys := memsys.New(ctx.Socket(), memsys.UncachedNVM)
	ph := memsys.Phase{
		Name: "bench", Share: 1,
		ReadBW: units.GBps(50), WriteBW: units.GBps(20),
		ReadMix:      memsys.Pure(memdev.Strided),
		WritePattern: memdev.Transpose,
		WorkingSet:   64 * units.GiB,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sys.SolveEpoch(ph, 48)
	}
}

// BenchmarkWorkloadRun measures a full application evaluation (all
// phases, slowdown reference, traffic accounting).
func BenchmarkWorkloadRun(b *testing.B) {
	ctx := experiments.NewContext()
	w := dwarfs.All()[0].New()
	sys := memsys.New(ctx.Socket(), memsys.CachedNVM)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Run(w, sys, 48); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWPQ measures the operational write-pending-queue model that
// grounds the write-combining constants (ablation: address-level versus
// closed-form write capability).
func BenchmarkWPQ(b *testing.B) {
	q := memdev.NewWPQ(64, units.GBps(13))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Store(float64(i)*1e-8, uint64(i*4))
	}
}

// BenchmarkAddressCache measures the operational direct-mapped DRAM
// cache (ablation: address-level versus closed-form hit model). Tracked
// by the benchkit baseline.
func BenchmarkAddressCache(b *testing.B) { benchkit.AddressCache(b) }

// BenchmarkHitModelClosedForm is the counterpart closed-form evaluation.
func BenchmarkHitModelClosedForm(b *testing.B) {
	h := dramcache.HitModel{Capacity: 96 * units.GiB}
	for i := 0; i < b.N; i++ {
		_ = h.Rate(units.Bytes(i%256)*units.GiB/2, memdev.Stencil)
	}
}

// --- engine vs sequential ---

// benchRegistry regenerates the full experiment registry on a fresh
// context per iteration (so the engine cache never carries over between
// iterations) with the given worker count; parallel selects the
// engine-fanned path.
func benchRegistry(b *testing.B, workers int, parallel bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext()
		ctx.TraceSamples = 100
		ctx.Engine.SetWorkers(workers)
		var err error
		if parallel {
			_, err = experiments.RunAllParallel(ctx)
		} else {
			_, err = experiments.RunAll(ctx)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistrySequential is the sequential baseline: every
// experiment in registry order on a single engine worker.
func BenchmarkRegistrySequential(b *testing.B) { benchRegistry(b, 1, false) }

// BenchmarkRegistryParallel fans the registry across GOMAXPROCS engine
// workers. Output is byte-identical to the sequential run (the
// experiments package property-tests this); on a multi-core machine the
// wall-clock gap is the engine's speedup.
func BenchmarkRegistryParallel(b *testing.B) { benchRegistry(b, runtime.GOMAXPROCS(0), true) }

// BenchmarkScenarioSequential sweeps the 216-point full-cartesian
// stress scenario (all apps x all modes x the full thread ladder) on
// one worker, fresh engine per iteration. Tracked by the benchkit
// baseline.
func BenchmarkScenarioSequential(b *testing.B) { benchkit.ScenarioSequential(b) }

// BenchmarkScenarioParallel sweeps it across GOMAXPROCS workers.
func BenchmarkScenarioParallel(b *testing.B) { benchkit.ScenarioParallel(b) }

// --- tracked hot-path benches (internal/benchkit baseline set) ---

// BenchmarkAddrsimCrossval is one cross-validation workload unit
// through the streaming address simulator. Tracked by the benchkit
// baseline.
func BenchmarkAddrsimCrossval(b *testing.B) { benchkit.AddrsimCrossval(b) }

// BenchmarkTraceBuild reconstructs a 2000-sample noisy bandwidth trace
// over a 150-segment timeline (the Figure 4/7/8 shape). Tracked by the
// benchkit baseline.
func BenchmarkTraceBuild(b *testing.B) { benchkit.TraceBuild(b) }

// BenchmarkEngineCacheHit measures a fully cached engine evaluation —
// the common case inside overlapping sweeps. Tracked by the benchkit
// baseline.
func BenchmarkEngineCacheHit(b *testing.B) { benchkit.EngineCacheHit(b) }

// BenchmarkStoreOpen reopens a compacted 4096-point binary result store
// — the daemon-restart path, index-only thanks to the v2 segment
// format. Tracked by the benchkit baseline.
func BenchmarkStoreOpen(b *testing.B) { benchkit.StoreOpen(b) }

// BenchmarkStoreAppend commits a 512-point batch to a fresh disk store
// and closes it. Tracked by the benchkit baseline.
func BenchmarkStoreAppend(b *testing.B) { benchkit.StoreAppend(b) }

// BenchmarkPointsStreamed renders the beyond-dram sweep through the
// zero-allocation NDJSON streaming encoder. Tracked by the benchkit
// baseline.
func BenchmarkPointsStreamed(b *testing.B) { benchkit.PointsStreamed(b) }

// BenchmarkTrafficBursty replays the bursty two-class traffic preset at
// full speed through an in-process manager and reports the
// critical-class p99 admission-to-first-point latency
// (p99_first_point_ns). Tracked by the benchkit baseline.
func BenchmarkTrafficBursty(b *testing.B) { benchkit.TrafficBursty(b) }

// BenchmarkFleetScheduler dispatches a cold 64-point sweep across four
// in-process fleet workers over loopback HTTP — the coordinator,
// scheduler and worker path end to end. Tracked by the benchkit
// baseline.
func BenchmarkFleetScheduler(b *testing.B) { benchkit.FleetScheduler(b) }

// BenchmarkFleetDispatchWindowed drives a cold 4096-point sweep through
// the windowed dispatcher and the batched, compressed result path on
// the same four-worker loopback fleet — the 100k-scale dispatch shape
// at benchmark size. Reports per_point_ns (gated) and points_per_sec
// (informational). Tracked by the benchkit baseline.
func BenchmarkFleetDispatchWindowed(b *testing.B) { benchkit.FleetDispatchWindowed(b) }

// BenchmarkFleetWirePoint serializes a coalesced 256-point result batch
// exactly as workers post it and reports bytes/point on the wire before
// (plain per-chunk JSON) and after (gzip-coalesced) compression.
// Tracked by the benchkit baseline.
func BenchmarkFleetWirePoint(b *testing.B) { benchkit.FleetWirePoint(b) }

// BenchmarkMicroDeviceMatrix regenerates the Section II device
// capability matrix (extension id "micro").
func BenchmarkMicroDeviceMatrix(b *testing.B) { benchExperiment(b, "micro") }

// BenchmarkAblationTiers sweeps the model constants and verifies the
// Table III tiers are robust (extension id "ablation").
func BenchmarkAblationTiers(b *testing.B) { benchExperiment(b, "ablation") }
