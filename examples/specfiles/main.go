// Specfiles: author a sweep as a JSON spec file — no Go, no recompile —
// then load and run it through the evaluation engine. The spec mixes
// every workload source the schema offers: a registry application, a
// resized one ("sized") and a fused multi-application workload
// ("composite"). The same file runs from the CLI via
// `nvmbench -spec <path>`.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/scenario"
)

const spec = `{
  "name": "mixed-pressure",
  "description": "XSBench at paper size and doubled, next to a fused Hypre+FFT pipeline",
  "apps": ["XSBench"],
  "sized": [{"app": "XSBench", "scale": 2, "label": "XSBench-2x"}],
  "composite": [{"label": "hypre+fft", "parts": [{"app": "Hypre", "weight": 3}, {"app": "FFT", "weight": 1}]}],
  "modes": ["DRAM", "cached-NVM", "uncached-NVM"],
  "threads": [48]
}
`

func main() {
	dir, err := os.MkdirTemp("", "specfiles")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mixed-pressure.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		log.Fatal(err)
	}

	sp, err := scenario.LoadSpec(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d evaluation points\n\n", sp.Name, sp.Size())

	m := core.NewMachine()
	outs, err := m.RunScenario(sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(scenario.Table(outs))

	// Round-trip: a Spec is data, so presets export as seed files for
	// authoring new sweeps (nvmbench -export-specs does this for specs/).
	b, err := scenario.Encode(sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe spec as nvmbench -export-specs would write it:\n%s", b)
}
