// Beyond-DRAM problems: the paper's Fig 3 scenario. Cached-NVM lets
// applications run inputs several times the DRAM capacity at reasonable
// performance — SuperLU sustains its factorization rate up to 5.1x DRAM
// because its active working set stays small, while BoxLib and Hypre
// still roughly double the uncached-NVM performance at 3-4.4x DRAM.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dwarfs/sparse"
	"repro/internal/dwarfs/structured"
	"repro/internal/dwarfs/unstructured"
	"repro/internal/memsys"
	"repro/internal/workload"
)

func main() {
	m := core.NewMachine()
	sock := m.Context().Socket()
	run := func(w *workload.Workload, mode core.Mode) workload.Result {
		res, err := workload.Run(w, memsys.New(sock, mode), 48)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("SuperLU on the five UF datasets (cached-NVM):")
	fmt.Printf("%-12s %10s %16s\n", "dataset", "fp/DRAM", "Factor Mflops")
	for _, d := range sparse.Datasets() {
		w := sparse.WorkloadDataset(d)
		res := run(w, core.CachedNVM)
		fmt.Printf("%-12s %9.1fx %16.0f\n", d.Name, w.Footprint.GiBValue()/96, res.FoMValue)
	}

	fmt.Println("\nBoxLib and Hypre: cached-NVM speedup over uncached-NVM by footprint:")
	fmt.Printf("%-8s %10s %10s\n", "app", "fp/DRAM", "speedup")
	for _, ratio := range []float64{0.5, 1.0, 2.2, 4.4} {
		w := unstructured.WorkloadFootprintGiB(ratio * 96)
		sp := float64(run(w, core.UncachedNVM).Time) / float64(run(w, core.CachedNVM).Time)
		fmt.Printf("%-8s %9.1fx %9.2fx\n", "BoxLib", ratio, sp)
	}
	for _, ratio := range []float64{0.8, 1.6, 2.9} {
		w := structured.WorkloadFootprintGiB(ratio * 96)
		sp := float64(run(w, core.UncachedNVM).Time) / float64(run(w, core.CachedNVM).Time)
		fmt.Printf("%-8s %9.1fx %9.2fx\n", "Hypre", ratio, sp)
	}
}
