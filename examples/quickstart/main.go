// Quickstart: build the simulated Purley machine and compare one
// application across the three main-memory configurations the paper
// evaluates — DRAM-only, cached-NVM (Memory mode) and uncached-NVM
// (AppDirect).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	m := core.NewMachine()

	fmt.Println("Simulated platform:")
	fmt.Println(m.Platform().SpecTable())

	fmt.Println("XSBench (Monte Carlo neutron transport) on three configurations:")
	for _, mode := range []core.Mode{core.DRAMOnly, core.CachedNVM, core.UncachedNVM} {
		res, err := m.RunApp("XSBench", mode, 48)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %12.3g lookups/s  (slowdown %5.2fx, read %s)\n",
			mode, res.FoMValue, res.Slowdown, res.AvgRead())
	}

	fmt.Println("\nEvery registered application, uncached-NVM slowdown (Table III tiers):")
	for _, app := range m.Apps() {
		res, err := m.RunApp(app, core.UncachedNVM, 48)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %6.2fx\n", app, res.Slowdown)
	}
}
