// Advisor: apply the paper's four insights to every application — tier
// classification, write-throttling risk per phase, placement
// recommendations — and sweep the configuration space for the best
// option under a DRAM budget (the question a capacity planner actually
// asks of a DRAM/NVM system).
package main

import (
	"fmt"
	"log"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/units"
)

func main() {
	m := core.NewMachine()
	sock := m.Context().Socket()

	for _, app := range m.Apps() {
		w, err := m.Workload(app)
		if err != nil {
			log.Fatal(err)
		}
		adv, err := advisor.Analyze(w, sock, 48)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(adv.Summary)
	}

	fmt.Println("\nCapacity planning: fastest ScaLAPACK configuration under a 24-GiB DRAM budget:")
	w, _ := m.Workload("ScaLAPACK")
	evals, err := explore.Sweep(w, sock, explore.DefaultOptions(w))
	if err != nil {
		log.Fatal(err)
	}
	best, err := explore.BestUnder(evals, 24*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: %s using %s of DRAM\n", best.Option, best.Time, best.DRAMUsed)
}
