// Model-based prediction: the paper's Section V-A / Fig 10 scenario.
// Train the Eq. 1 multivariate regression on PCM-style samples from a
// single configuration (ht = 36 on cached-NVM) and predict the IPC of
// unseen concurrency levels, avoiding an exhaustive configuration-space
// search.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/model"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	m := core.NewMachine()
	sys := memsys.New(m.Context().Socket(), memsys.CachedNVM)
	rng := xrand.New(42)

	for _, app := range []string{"XSBench", "FFT"} {
		w, err := m.Workload(app)
		if err != nil {
			log.Fatal(err)
		}
		trainRes, err := workload.Run(w, sys, 36)
		if err != nil {
			log.Fatal(err)
		}
		mod, err := model.Train(model.CollectSamples(trainRes, 8, 0.02, rng))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — Eq.1 model trained at ht=36 (R²=%.4f, %d events kept)\n",
			app, mod.Reg.R2, len(mod.Kept))
		fmt.Printf("%10s %12s %12s %10s\n", "threads", "predicted", "observed", "accuracy")
		for _, th := range []int{8, 16, 24, 32, 36, 40, 48} {
			res, err := workload.Run(w, sys, th)
			if err != nil {
				log.Fatal(err)
			}
			pred, obs, acc := mod.EvaluatePoint(res, 0.02, rng)
			fmt.Printf("%10d %12.4f %12.4f %9.1f%%\n", th, pred, obs, 100*acc)
		}
		fmt.Println()
	}
}
