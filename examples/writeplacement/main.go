// Write-aware data placement: the paper's Section V-B / Fig 12 scenario.
// On uncached NVM, the data-centric profiler identifies ScaLAPACK's
// write-hot structures (the C matrix and workspace), a greedy optimizer
// pins them into a DRAM budget of 40% of the footprint, and the run
// recovers near-DRAM performance at roughly a third of the DRAM usage —
// while the read-aware control placement stays near uncached speed.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dwarfs/dense"
	"repro/internal/placement"
	"repro/internal/units"
)

func main() {
	m := core.NewMachine()
	sock := m.Context().Socket()
	w := dense.WorkloadN(48000)

	prof, err := placement.Profile(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Data-centric profile (per-structure traffic):")
	fmt.Printf("%-12s %12s %12s %12s\n", "structure", "size", "read", "write")
	for _, st := range prof {
		fmt.Printf("%-12s %12s %12s %12s\n", st.Name, st.Size, st.ReadBW, st.WriteBW)
	}

	budget := units.Bytes(float64(w.Footprint) * 0.40)
	for _, policy := range []placement.Policy{placement.WriteAware, placement.ReadAware} {
		plan, err := placement.Optimize(w, budget, policy)
		if err != nil {
			log.Fatal(err)
		}
		out, err := placement.Evaluate(w, plan, sock, 48)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s placement (DRAM budget %s):\n", policy, budget)
		fmt.Printf("  pinned to DRAM: %v (%s, %.0f%% of footprint)\n",
			keys(plan.InDRAM), plan.DRAMBytes, 100*out.DRAMUsageFrac)
		fmt.Printf("  time: DRAM %s | placed %s | cached %s | uncached %s\n",
			out.DRAM, out.Placed, out.Cached, out.Uncached)
		fmt.Printf("  normalized to DRAM: %.2fx (uncached: %.2fx)\n",
			out.NormalizedPlaced, float64(out.Uncached)/float64(out.DRAM))
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
