package repro

// Load-through guard for the shipped scenario spec files: specs/*.json
// and the Go preset literals in internal/scenario must stay in exact
// agreement, in both directions — the files decode to the literals, and
// the literals encode to the files byte-for-byte. Regenerate the tree
// with `go run ./cmd/nvmbench -export-specs specs` after editing a
// preset.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

func TestSpecFilesMatchPresets(t *testing.T) {
	specs, err := scenario.LoadDir("specs")
	if err != nil {
		t.Fatal(err)
	}
	presets := scenario.Presets()
	if len(specs) != len(presets) {
		t.Fatalf("specs/ holds %d specs, presets() has %d", len(specs), len(presets))
	}
	byName := map[string]scenario.Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	for _, want := range presets {
		got, ok := byName[want.Name]
		if !ok {
			t.Errorf("preset %q has no specs/%s.json", want.Name, want.Name)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("preset %q drifted from its spec file:\nfile: %+v\nGo:   %+v", want.Name, got, want)
		}
	}
}

func TestSpecFileBytesPinned(t *testing.T) {
	for _, sp := range scenario.Presets() {
		want, err := scenario.Encode(sp)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		path := filepath.Join("specs", sp.Name+".json")
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with `go run ./cmd/nvmbench -export-specs specs`)", sp.Name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s is stale; regenerate with `go run ./cmd/nvmbench -export-specs specs`", path)
		}
	}
	// No stray spec files beyond the presets.
	entries, err := os.ReadDir("specs")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(scenario.Presets()) {
		t.Errorf("specs/ holds %d entries, want exactly the %d presets", len(entries), len(scenario.Presets()))
	}
}
