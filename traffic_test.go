package repro

// Load-through guard for the shipped traffic spec files: traffic/*.json
// and the Go preset literals in internal/traffic must stay in exact
// agreement, in both directions — the files decode to the literals, and
// the literals encode to the files byte-for-byte. Regenerate the tree
// with `go run ./cmd/nvmload -export-specs traffic` after editing a
// preset.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/traffic"
)

func TestTrafficFilesMatchPresets(t *testing.T) {
	for _, want := range traffic.Presets() {
		path := filepath.Join("traffic", want.Name+".json")
		got, err := traffic.LoadSpec(path)
		if err != nil {
			t.Errorf("%v (regenerate with `go run ./cmd/nvmload -export-specs traffic`)", err)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("preset %q drifted from its spec file:\nfile: %+v\nGo:   %+v", want.Name, got, want)
		}
	}
}

func TestTrafficFileBytesPinned(t *testing.T) {
	for _, sp := range traffic.Presets() {
		want, err := traffic.Encode(sp)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		path := filepath.Join("traffic", sp.Name+".json")
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with `go run ./cmd/nvmload -export-specs traffic`)", sp.Name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s is stale; regenerate with `go run ./cmd/nvmload -export-specs traffic`", path)
		}
	}
	// No stray spec files beyond the presets.
	entries, err := os.ReadDir("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(traffic.Presets()) {
		t.Errorf("traffic/ holds %d entries, want exactly the %d presets", len(entries), len(traffic.Presets()))
	}
}
