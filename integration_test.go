package repro

// End-to-end integration tests across the whole stack: public API ->
// workloads -> solver -> experiments -> advisor/explore. These exercise
// the flows a downstream user runs, complementing the per-package units.

import (
	"strings"
	"testing"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/memsys"
	"repro/internal/units"
)

// The full evaluation is deterministic: two fresh machines produce
// byte-identical reports.
func TestEvaluationDeterministic(t *testing.T) {
	render := func() string {
		m := core.NewMachine()
		m.Context().TraceSamples = 60
		reports, err := m.RunAllExperiments()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, r := range reports {
			b.WriteString(r.String())
		}
		return b.String()
	}
	if render() != render() {
		t.Error("full evaluation is not deterministic")
	}
}

// Every app on every mode at several thread counts produces sane
// results through the public API.
func TestAllAppsAllModes(t *testing.T) {
	m := core.NewMachine()
	for _, app := range m.Apps() {
		for _, mode := range []core.Mode{core.DRAMOnly, core.CachedNVM, core.UncachedNVM} {
			for _, th := range []int{8, 24, 48} {
				res, err := m.RunApp(app, mode, th)
				if err != nil {
					t.Fatalf("%s/%v/%d: %v", app, mode, th, err)
				}
				if res.Time <= 0 || res.Slowdown < 1-1e-9 {
					t.Errorf("%s/%v/%d: time=%v slowdown=%v", app, mode, th, res.Time, res.Slowdown)
				}
				if res.FoMValue <= 0 {
					t.Errorf("%s/%v/%d: FoM=%v", app, mode, th, res.FoMValue)
				}
			}
		}
	}
}

// The paper's decision chain end to end: classify the app, and when the
// advisor recommends placement, the explorer's budgeted best option is
// indeed a placed configuration that beats uncached.
func TestAdvisorExploreChain(t *testing.T) {
	m := core.NewMachine()
	sock := m.Context().Socket()
	w, err := m.Workload("ScaLAPACK")
	if err != nil {
		t.Fatal(err)
	}
	adv, err := advisor.Analyze(w, sock, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.RecommendPlacement {
		t.Fatal("expected placement recommendation for ScaLAPACK")
	}
	evals, err := explore.Sweep(w, sock, explore.DefaultOptions(w))
	if err != nil {
		t.Fatal(err)
	}
	budget := units.Bytes(float64(w.Footprint) * 0.45)
	best, err := explore.BestUnder(evals, budget)
	if err != nil {
		t.Fatal(err)
	}
	if best.Option.Mode != memsys.Placed {
		t.Errorf("budgeted best = %s, want placed", best.Option)
	}
	var uncachedBest units.Duration
	for _, e := range evals {
		if e.Option.Mode == memsys.UncachedNVM && (uncachedBest == 0 || e.Time < uncachedBest) {
			uncachedBest = e.Time
		}
	}
	if best.Time >= uncachedBest {
		t.Errorf("placed best (%v) should beat uncached best (%v)", best.Time, uncachedBest)
	}
}

// Traces, counters and FoMs stay consistent: the trace's total time
// matches the result, and phase shares sum to one.
func TestTraceConsistency(t *testing.T) {
	m := core.NewMachine()
	for _, app := range m.Apps() {
		res, err := m.RunApp(app, core.UncachedNVM, 48)
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trace(120, 0)
		if d := float64(tr.TotalTime-res.Time) / float64(res.Time); d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: trace time %v != run time %v", app, tr.TotalTime, res.Time)
		}
		var share float64
		for _, ph := range res.Workload.Phases {
			share += tr.PhaseShare(ph.Name)
		}
		if share < 0.999 || share > 1.001 {
			t.Errorf("%s: phase shares sum to %v", app, share)
		}
	}
}

// The three insights hold as cross-app invariants through the public
// API: cached-NVM never loses to uncached-NVM at the paper inputs, and
// the DRAM baseline bounds both.
func TestModeOrderingInvariant(t *testing.T) {
	m := core.NewMachine()
	for _, app := range m.Apps() {
		d, _ := m.RunApp(app, core.DRAMOnly, 48)
		c, _ := m.RunApp(app, core.CachedNVM, 48)
		u, _ := m.RunApp(app, core.UncachedNVM, 48)
		if c.Time < d.Time*999/1000 {
			t.Errorf("%s: cached (%v) beats DRAM (%v)", app, c.Time, d.Time)
		}
		if u.Time < c.Time*999/1000 {
			t.Errorf("%s: uncached (%v) beats cached (%v)", app, u.Time, c.Time)
		}
	}
}
